#include "core/multihop.h"

#include <algorithm>
#include <limits>
#include <map>

#include "check/contract.h"

namespace droute::core {

namespace {

struct Label {
  double time = std::numeric_limits<double>::infinity();
  std::vector<std::string> path;  // waypoints used to reach this endpoint
};

}  // namespace

std::vector<MultiHopRoute> multihop_frontier(const TimeMatrix& matrix,
                                             const std::string& src,
                                             const std::string& dst,
                                             MultiHopOptions options) {
  DROUTE_CHECK(options.max_extra_hops >= 0, "negative hop budget");
  const auto nodes = matrix.endpoints();

  // best[h][n] = cheapest way to have the file at n using exactly <= h legs
  // beyond the first. We expand legs one at a time; each added leg costs the
  // matrix time plus the hand-off overhead at the relaying node.
  std::map<std::string, Label> current;  // after 1 leg from src
  for (const auto& node : nodes) {
    if (node == src) continue;
    if (matrix.has(src, node)) {
      current[node] = Label{matrix.get(src, node), {}};
    }
  }

  std::vector<MultiHopRoute> frontier;
  auto record = [&](const std::map<std::string, Label>& layer) {
    auto it = layer.find(dst);
    if (it == layer.end() ||
        it->second.time == std::numeric_limits<double>::infinity()) {
      return;
    }
    MultiHopRoute route;
    route.waypoints = it->second.path;
    route.total_s = it->second.time;
    frontier.push_back(std::move(route));
  };
  record(current);

  for (int hop = 1; hop <= options.max_extra_hops; ++hop) {
    std::map<std::string, Label> next = current;
    for (const auto& [mid, label] : current) {
      if (mid == dst) continue;  // no point relaying through the destination
      for (const auto& node : nodes) {
        if (node == src || node == mid) continue;
        if (!matrix.has(mid, node)) continue;
        const double cost =
            label.time + options.per_hop_overhead_s + matrix.get(mid, node);
        auto& slot = next[node];
        if (cost < slot.time) {
          slot.time = cost;
          slot.path = label.path;
          slot.path.push_back(mid);
        }
      }
    }
    current = std::move(next);
    record(current);
  }

  // Deduplicate: keep, per hop count, only entries that improve on fewer
  // hops (the frontier is the minimum envelope).
  std::vector<MultiHopRoute> envelope;
  for (auto& route : frontier) {
    if (envelope.empty() || route.total_s < envelope.back().total_s ||
        route.hops() > envelope.back().hops()) {
      envelope.push_back(std::move(route));
    }
  }
  return envelope;
}

util::Result<MultiHopRoute> best_multihop_route(const TimeMatrix& matrix,
                                                const std::string& src,
                                                const std::string& dst,
                                                MultiHopOptions options) {
  const auto frontier = multihop_frontier(matrix, src, dst, options);
  if (frontier.empty()) {
    return util::Error::make("no measured chain connects " + src + " to " +
                             dst);
  }
  const auto best = std::min_element(
      frontier.begin(), frontier.end(),
      [](const MultiHopRoute& a, const MultiHopRoute& b) {
        if (a.total_s != b.total_s) return a.total_s < b.total_s;
        return a.hops() < b.hops();  // fewer hops on a tie
      });
  return *best;
}

}  // namespace droute::core
