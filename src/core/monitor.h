// DynamicMonitor — the paper's stated future work: "monitor and bypass
// dynamic bottlenecks on the WAN".
//
// Maintains an EWMA throughput estimate per route from periodic probe
// observations and flags a route as degraded when fresh observations fall
// below a fraction of the established baseline for several consecutive
// probes (hysteresis avoids flapping on one bad sample). The re-route
// decision itself is the caller's (pair this with RouteAdvisor/overlay).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace droute::core {

class DynamicMonitor {
 public:
  struct Options {
    double ewma_alpha = 0.3;          // weight of the newest observation
    double degrade_fraction = 0.6;    // obs < fraction * baseline => strike
    int strikes_to_degrade = 3;       // consecutive strikes before flagging
    int min_observations = 3;         // baseline warm-up before judging
  };

  DynamicMonitor() : options_(Options{}) {}
  explicit DynamicMonitor(Options options) : options_(options) {}

  /// Feeds one probe observation (throughput in Mbps) for a route.
  void observe(const std::string& route, double mbps);

  /// Current EWMA baseline; nullopt until the route has been observed.
  std::optional<double> baseline_mbps(const std::string& route) const;

  /// True when the route has been flagged degraded (see Options).
  bool is_degraded(const std::string& route) const;

  /// Clears the degraded flag and strike count (after a re-route or repair);
  /// the learned baseline is kept.
  void reset(const std::string& route);

  /// Routes currently flagged degraded.
  std::vector<std::string> degraded_routes() const;

 private:
  struct State {
    double ewma = 0.0;
    int observations = 0;
    int strikes = 0;
    bool degraded = false;
  };

  Options options_;
  std::map<std::string, State> routes_;
};

}  // namespace droute::core
