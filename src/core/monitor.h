// DynamicMonitor — the paper's stated future work: "monitor and bypass
// dynamic bottlenecks on the WAN".
//
// Maintains an EWMA throughput estimate per route from periodic probe
// observations and flags a route as degraded when fresh observations fall
// below a fraction of the established baseline for several consecutive
// probes (hysteresis avoids flapping on one bad sample). The re-route
// decision itself is the caller's (pair this with RouteAdvisor/overlay).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace droute::obs {
class Registry;
}  // namespace droute::obs

namespace droute::core {

class DynamicMonitor {
 public:
  struct Options {
    double ewma_alpha = 0.3;          // weight of the newest observation
    double degrade_fraction = 0.6;    // obs < fraction * baseline => strike
    int strikes_to_degrade = 3;       // consecutive strikes before flagging
    int min_observations = 3;         // baseline warm-up before judging
  };

  DynamicMonitor() : options_(Options{}) {}
  explicit DynamicMonitor(Options options) : options_(options) {}

  /// Binds the monitor to an obs metrics registry instead of hand-fed
  /// probes: poll() scans every histogram named `<metric_prefix>.<route>`
  /// (e.g. prefix "probe.route_mbps" matches "probe.route_mbps.direct") and
  /// feeds each histogram's newly accumulated mean as one observation for
  /// that route. The registry must outlive the monitor.
  DynamicMonitor(Options options, const obs::Registry* registry,
                 std::string metric_prefix);

  /// Drains new samples from the bound registry (see the registry ctor);
  /// returns the number of observations fed. No-op without a registry.
  int poll();

  /// Feeds one probe observation (throughput in Mbps) for a route.
  void observe(const std::string& route, double mbps);

  /// Current EWMA baseline; nullopt until the route has been observed.
  std::optional<double> baseline_mbps(const std::string& route) const;

  /// True when the route has been flagged degraded (see Options).
  bool is_degraded(const std::string& route) const;

  /// Clears the degraded flag and strike count (after a re-route or repair);
  /// the learned baseline is kept.
  void reset(const std::string& route);

  /// Routes currently flagged degraded.
  std::vector<std::string> degraded_routes() const;

 private:
  struct State {
    double ewma = 0.0;
    int observations = 0;
    int strikes = 0;
    bool degraded = false;
  };

  // Per-route histogram position consumed by poll() so each sample window
  // is observed exactly once.
  struct Consumed {
    std::uint64_t count = 0;
    double sum = 0.0;
  };

  Options options_;
  std::map<std::string, State> routes_;
  const obs::Registry* registry_ = nullptr;
  std::string metric_prefix_;
  std::map<std::string, Consumed> consumed_;
};

}  // namespace droute::core
