#include "core/advisor.h"

#include <algorithm>

#include "check/contract.h"
#include "util/result.h"

namespace droute::core {

Decision RouteAdvisor::recommend(
    const std::vector<RouteStats>& candidates) const {
  DROUTE_CHECK(!candidates.empty(), "RouteAdvisor: no candidates");
  const auto direct_it =
      std::find_if(candidates.begin(), candidates.end(),
                   [](const RouteStats& r) { return r.is_direct; });
  DROUTE_CHECK(direct_it != candidates.end(),
               "RouteAdvisor: a direct candidate is required");

  const RouteStats* best = &candidates.front();
  for (const RouteStats& candidate : candidates) {
    if (candidate.summary.mean < best->summary.mean) best = &candidate;
  }

  Decision decision;
  decision.route_key = best->key;
  decision.expected_s = best->summary.mean;

  if (best->is_direct) {
    decision.confidence = Confidence::kClear;
    decision.reason = "direct route has the lowest mean transfer time";
    return decision;
  }

  const stats::Interval best_iv{best->summary.mean, best->summary.stddev};
  const stats::Interval direct_iv{direct_it->summary.mean,
                                  direct_it->summary.stddev};
  // The shared Sec III-B verdict (stats::judge_lower_better) — the same
  // decision the online ctrl::PathEstimator applies per epoch.
  const stats::SignificanceDecision verdict = stats::judge_lower_better(
      best_iv, direct_iv,
      {.prefer_baseline_on_overlap = options_.prefer_direct_on_overlap,
       .min_gain = options_.min_detour_gain});

  if (!verdict.choose_candidate) {
    decision.route_key = direct_it->key;
    decision.expected_s = direct_it->summary.mean;
    decision.confidence = Confidence::kOverlapping;
    decision.reason =
        verdict.overlap ? "detour error bars overlap direct; keeping direct "
                          "(paper Sec III-B conservatism)"
                        : "detour gain below configured threshold";
    return decision;
  }

  decision.confidence =
      verdict.overlap ? Confidence::kOverlapping : Confidence::kClear;
  decision.reason =
      "detour beats direct by " +
      std::to_string(static_cast<int>(verdict.gain * 100.0)) + "%";
  return decision;
}

std::string SizeTable::dominant_route() const {
  std::map<std::string, int> votes;
  for (const auto& [size, decision] : by_size) ++votes[decision.route_key];
  std::string best;
  int best_votes = -1;
  for (const auto& [route, count] : votes) {
    if (count > best_votes) {
      best = route;
      best_votes = count;
    }
  }
  return best;
}

std::vector<std::uint64_t> SizeTable::exceptions() const {
  const std::string dominant = dominant_route();
  std::vector<std::uint64_t> out;
  for (const auto& [size, decision] : by_size) {
    if (decision.route_key != dominant) out.push_back(size);
  }
  return out;
}

}  // namespace droute::core
