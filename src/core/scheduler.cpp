#include "core/scheduler.h"

#include <algorithm>

#include "check/contract.h"
#include "util/result.h"

namespace droute::core {

BatchScheduler::BatchScheduler(Options options, std::function<double()> now,
                               Launcher launcher)
    : options_(options), now_(std::move(now)), launcher_(std::move(launcher)) {
  DROUTE_CHECK(options_.max_concurrent >= 1, "need concurrency >= 1");
  DROUTE_CHECK(now_ != nullptr && launcher_ != nullptr,
               "scheduler needs a clock and a launcher");
}

bool BatchScheduler::submit(TransferJob job) {
  if (job.bytes == 0 || job.id.empty() || seen_ids_.contains(job.id)) {
    return false;
  }
  seen_ids_[job.id] = true;
  // Insert keeping the queue sorted: higher priority first, FIFO within a
  // priority class (stable insertion point at the end of the class).
  const auto pos = std::find_if(
      queue_.begin(), queue_.end(),
      [&](const TransferJob& other) { return other.priority < job.priority; });
  queue_.insert(pos, std::move(job));
  if (active_) pump();
  return true;
}

void BatchScheduler::start() {
  active_ = true;
  pump();
}

void BatchScheduler::pump() {
  while (running_ < options_.max_concurrent && !queue_.empty()) {
    TransferJob job = std::move(queue_.front());
    queue_.erase(queue_.begin());
    launch(std::move(job));
  }
}

void BatchScheduler::launch(TransferJob job) {
  ++running_;
  JobOutcome outcome;
  outcome.id = job.id;
  outcome.route_key = "Direct";
  if (overlay_ != nullptr) {
    if (const auto entry = overlay_->lookup(job.client, job.provider)) {
      outcome.route_key = entry->route_key;
    }
  }
  outcome.started_at = now_();
  if (!first_start_) first_start_ = outcome.started_at;

  const std::string route = outcome.route_key;
  launcher_(job, route,
            [this, outcome](bool success, std::string error) mutable {
              outcome.finished_at = now_();
              outcome.success = success;
              outcome.error = std::move(error);
              last_finish_ = std::max(last_finish_, outcome.finished_at);
              outcomes_.push_back(std::move(outcome));
              --running_;
              DROUTE_CHECK(running_ >= 0, "scheduler completion underflow");
              if (active_) pump();
            });
}

double BatchScheduler::makespan_s() const {
  if (!first_start_ || outcomes_.empty()) return 0.0;
  return last_finish_ - *first_start_;
}

}  // namespace droute::core
