#include "core/overlay.h"

#include <sstream>

namespace droute::core {

void OverlayTable::install(OverlayEntry entry) {
  const auto key = std::make_pair(entry.client, entry.provider);
  table_[key] = std::move(entry);
}

std::optional<OverlayEntry> OverlayTable::lookup(
    const std::string& client, const std::string& provider) const {
  const auto it = table_.find({client, provider});
  if (it == table_.end()) return std::nullopt;
  return it->second;
}

bool OverlayTable::evict(const std::string& client,
                         const std::string& provider) {
  return table_.erase({client, provider}) > 0;
}

std::vector<OverlayEntry> OverlayTable::entries() const {
  std::vector<OverlayEntry> out;
  out.reserve(table_.size());
  for (const auto& [key, entry] : table_) out.push_back(entry);
  return out;
}

std::string OverlayTable::render() const {
  std::ostringstream out;
  for (const auto& [key, entry] : table_) {
    out << entry.client << " -> " << entry.provider << " : "
        << entry.route_key << " (expected "
        << entry.expected_s << " s"
        << (entry.confidence == Confidence::kClear ? ""
                                                   : ", overlapping bars")
        << ")\n";
  }
  return out.str();
}

}  // namespace droute::core
