// Multi-hop detour search — the paper restricts itself to "one extra hop"
// (Sec III-A); this extension finds the best k-hop relay chain over a
// measured transfer-time matrix.
//
// Store-and-forward semantics: a chain src -> w1 -> ... -> wk -> dst costs
// the sum of leg times plus a per-hop hand-off overhead (session setup,
// DTN storage latency). The search is exact: dynamic programming over
// (hop count, endpoint), which is Bellman-Ford bounded to max_hops edges —
// no negative cycles exist since all times are positive.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/tiv.h"
#include "util/result.h"

namespace droute::core {

struct MultiHopRoute {
  std::vector<std::string> waypoints;  // intermediate nodes only
  double total_s = 0.0;                // includes per-hop overheads

  int hops() const { return static_cast<int>(waypoints.size()); }
};

struct MultiHopOptions {
  int max_extra_hops = 2;       // k: number of intermediates allowed
  double per_hop_overhead_s = 0.0;
};

/// Cheapest route from src to dst using at most `max_extra_hops`
/// intermediates from the matrix. Fails when no measured chain connects
/// src to dst. The direct route (zero waypoints) competes on equal terms.
[[nodiscard]]
util::Result<MultiHopRoute> best_multihop_route(const TimeMatrix& matrix,
                                                const std::string& src,
                                                const std::string& dst,
                                                MultiHopOptions options = {});

/// Best route per hop budget 0..max_extra_hops — the marginal-benefit curve
/// (does the second hop ever pay for its overhead?).
std::vector<MultiHopRoute> multihop_frontier(const TimeMatrix& matrix,
                                             const std::string& src,
                                             const std::string& dst,
                                             MultiHopOptions options = {});

}  // namespace droute::core
