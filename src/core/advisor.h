// RouteAdvisor — turns measured route statistics into a recommendation,
// implementing the paper's decision logic (Sec III-B):
//   * prefer the route with the lowest mean transfer time;
//   * BUT if the winner is a detour whose +/- 1 stddev error bar overlaps the
//     direct route's, fall back to direct ("because of this significant
//     overlap, we may not choose to rely on any detours");
//   * a route with both lower mean and lower variance is strictly preferred.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "stats/descriptive.h"
#include "stats/overlap.h"

namespace droute::core {

struct RouteStats {
  std::string key;              // e.g. "direct", "via UAlberta"
  stats::Summary summary;
  bool is_direct = false;
};

enum class Confidence { kClear, kOverlapping };

struct Decision {
  std::string route_key;
  double expected_s = 0.0;
  Confidence confidence = Confidence::kClear;
  std::string reason;
};

class RouteAdvisor {
 public:
  struct Options {
    /// Apply the paper's conservatism: overlapping detours lose to direct.
    bool prefer_direct_on_overlap = true;
    /// Minimum relative gain a detour must show over direct to be chosen
    /// even when clear of overlap (0 = any gain).
    double min_detour_gain = 0.0;
  };

  RouteAdvisor() : options_(Options{}) {}
  explicit RouteAdvisor(Options options) : options_(options) {}

  /// Recommends among candidate routes; exactly one must be marked direct.
  /// Empty candidates are a programming error.
  Decision recommend(const std::vector<RouteStats>& candidates) const;

 private:
  Options options_;
};

/// Per-size recommendation table for one (client, provider) pair: the
/// machine-readable version of the paper's Table I cells with their
/// file-size exception footnotes.
struct SizeTable {
  std::map<std::uint64_t, Decision> by_size;

  /// The most common recommended route across sizes (the table cell), plus
  /// the sizes deviating from it (the footnote).
  std::string dominant_route() const;
  std::vector<std::uint64_t> exceptions() const;
};

}  // namespace droute::core
