#include "core/monitor.h"

#include <utility>
#include <vector>

#include "check/contract.h"
#include "obs/metrics.h"
#include "util/result.h"

namespace droute::core {

DynamicMonitor::DynamicMonitor(Options options, const obs::Registry* registry,
                               std::string metric_prefix)
    : options_(options),
      registry_(registry),
      metric_prefix_(std::move(metric_prefix)) {
  DROUTE_CHECK(registry_ != nullptr, "DynamicMonitor: null registry");
  DROUTE_CHECK(!metric_prefix_.empty(), "DynamicMonitor: empty prefix");
}

int DynamicMonitor::poll() {
  if (registry_ == nullptr) return 0;
  int fed = 0;
  for (const obs::Histogram* hist :
       registry_->histograms_with_prefix(metric_prefix_)) {
    // Route name is the suffix after "<prefix>.".
    const std::string route = hist->name().substr(metric_prefix_.size() + 1);
    const obs::HistogramSnapshot snap = hist->snapshot();
    Consumed& seen = consumed_[route];
    if (snap.count <= seen.count) continue;
    // Mean of only the samples accumulated since the last poll: exactly one
    // observation per window, so EWMA weighting matches hand-fed probes.
    const double delta_mean = (snap.sum - seen.sum) /
                              static_cast<double>(snap.count - seen.count);
    seen.count = snap.count;
    seen.sum = snap.sum;
    observe(route, delta_mean);
    ++fed;
  }
  return fed;
}

void DynamicMonitor::observe(const std::string& route, double mbps) {
  DROUTE_CHECK(mbps >= 0.0, "negative throughput observation");
  State& state = routes_[route];
  if (state.observations == 0) {
    state.ewma = mbps;
  }
  ++state.observations;

  // Judge the new sample against the baseline *before* folding it in, so a
  // sudden collapse is compared with the healthy history.
  if (state.observations > options_.min_observations &&
      mbps < options_.degrade_fraction * state.ewma) {
    if (++state.strikes >= options_.strikes_to_degrade) state.degraded = true;
    // A degraded route's baseline is frozen: folding collapse samples into
    // the EWMA would normalize the failure and mask recovery detection.
    if (state.degraded) return;
  } else {
    state.strikes = 0;
  }
  state.ewma = options_.ewma_alpha * mbps +
               (1.0 - options_.ewma_alpha) * state.ewma;
}

std::optional<double> DynamicMonitor::baseline_mbps(
    const std::string& route) const {
  const auto it = routes_.find(route);
  if (it == routes_.end() || it->second.observations == 0) return std::nullopt;
  return it->second.ewma;
}

bool DynamicMonitor::is_degraded(const std::string& route) const {
  const auto it = routes_.find(route);
  return it != routes_.end() && it->second.degraded;
}

void DynamicMonitor::reset(const std::string& route) {
  const auto it = routes_.find(route);
  if (it == routes_.end()) return;
  it->second.strikes = 0;
  it->second.degraded = false;
}

std::vector<std::string> DynamicMonitor::degraded_routes() const {
  std::vector<std::string> out;
  for (const auto& [route, state] : routes_) {
    if (state.degraded) out.push_back(route);
  }
  return out;
}

}  // namespace droute::core
