#include "core/monitor.h"

#include <vector>

#include "check/contract.h"
#include "util/result.h"

namespace droute::core {

void DynamicMonitor::observe(const std::string& route, double mbps) {
  DROUTE_CHECK(mbps >= 0.0, "negative throughput observation");
  State& state = routes_[route];
  if (state.observations == 0) {
    state.ewma = mbps;
  }
  ++state.observations;

  // Judge the new sample against the baseline *before* folding it in, so a
  // sudden collapse is compared with the healthy history.
  if (state.observations > options_.min_observations &&
      mbps < options_.degrade_fraction * state.ewma) {
    if (++state.strikes >= options_.strikes_to_degrade) state.degraded = true;
    // A degraded route's baseline is frozen: folding collapse samples into
    // the EWMA would normalize the failure and mask recovery detection.
    if (state.degraded) return;
  } else {
    state.strikes = 0;
  }
  state.ewma = options_.ewma_alpha * mbps +
               (1.0 - options_.ewma_alpha) * state.ewma;
}

std::optional<double> DynamicMonitor::baseline_mbps(
    const std::string& route) const {
  const auto it = routes_.find(route);
  if (it == routes_.end() || it->second.observations == 0) return std::nullopt;
  return it->second.ewma;
}

bool DynamicMonitor::is_degraded(const std::string& route) const {
  const auto it = routes_.find(route);
  return it != routes_.end() && it->second.degraded;
}

void DynamicMonitor::reset(const std::string& route) {
  const auto it = routes_.find(route);
  if (it == routes_.end()) return;
  it->second.strikes = 0;
  it->second.degraded = false;
}

std::vector<std::string> DynamicMonitor::degraded_routes() const {
  std::vector<std::string> out;
  for (const auto& [route, state] : routes_) {
    if (state.degraded) out.push_back(route);
  }
  return out;
}

}  // namespace droute::core
