#include "core/tiv.h"

#include <algorithm>

#include "check/contract.h"

namespace droute::core {

void TimeMatrix::set(const std::string& from, const std::string& to,
                     double seconds) {
  DROUTE_CHECK(seconds >= 0.0, "negative transfer time");
  const auto key = std::make_pair(from, to);
  if (!times_.contains(key)) {
    if (std::find(order_.begin(), order_.end(), from) == order_.end()) {
      order_.push_back(from);
    }
    if (std::find(order_.begin(), order_.end(), to) == order_.end()) {
      order_.push_back(to);
    }
  }
  times_[key] = seconds;
}

bool TimeMatrix::has(const std::string& from, const std::string& to) const {
  return times_.contains({from, to});
}

double TimeMatrix::get(const std::string& from, const std::string& to) const {
  const auto it = times_.find({from, to});
  DROUTE_CHECK(it != times_.end(), "TimeMatrix::get on missing pair");
  return it->second;
}

std::vector<std::string> TimeMatrix::endpoints() const { return order_; }

std::vector<TivViolation> find_violations(const TimeMatrix& matrix,
                                          double min_speedup,
                                          double overhead_s) {
  std::vector<TivViolation> out;
  const auto nodes = matrix.endpoints();
  for (const auto& src : nodes) {
    for (const auto& dst : nodes) {
      if (src == dst || !matrix.has(src, dst)) continue;
      const double direct = matrix.get(src, dst);
      for (const auto& via : nodes) {
        if (via == src || via == dst) continue;
        if (!matrix.has(src, via) || !matrix.has(via, dst)) continue;
        const double detour =
            matrix.get(src, via) + matrix.get(via, dst) + overhead_s;
        if (detour <= 0.0) continue;
        const double speedup = direct / detour;
        if (speedup > min_speedup && detour < direct) {
          out.push_back({src, via, dst, direct, detour, speedup});
        }
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace droute::core
