// DetourPlanner — the automatic detour selection the paper names as missing
// ("we have not implemented an automatic detour selection algorithm",
// Sec III-B).
//
// Strategy: probe every candidate route with a small payload a few times,
// fit the affine cost model  t(size) = overhead + size / rate  per route
// (two probe sizes suffice), then predict the transfer time of the real
// payload and recommend through RouteAdvisor. The probe budget is charged
// and reported so callers can weigh probing cost against expected savings.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/advisor.h"
#include "measure/campaign.h"
#include "util/result.h"

namespace droute::core {

/// Affine route cost model fitted from probes.
struct RouteModel {
  std::string key;
  double overhead_s = 0.0;        // per-transfer fixed cost
  double rate_bytes_per_s = 0.0;  // asymptotic throughput
  double residual = 0.0;          // mean abs error of the fit, seconds
  double r_squared = 0.0;         // OLS goodness of fit (1 = affine route)

  double predict_s(std::uint64_t bytes) const {
    return overhead_s + static_cast<double>(bytes) / rate_bytes_per_s;
  }
};

struct PlannerReport {
  Decision decision;
  std::vector<RouteModel> models;      // one per candidate, probe-fitted
  double probe_cost_s = 0.0;           // total simulated time spent probing
  std::uint64_t probe_bytes = 0;       // total payload probed
};

class DetourPlanner {
 public:
  struct Options {
    std::uint64_t small_probe_bytes = 2 * 1000 * 1000;   // 2 MB
    std::uint64_t large_probe_bytes = 10 * 1000 * 1000;  // 10 MB
    int probes_per_size = 2;
    RouteAdvisor::Options advisor;
    std::uint64_t probe_seed = 0x9120be;  // seed for probe-run derivation
  };

  explicit DetourPlanner(Options options);

  /// Registers a candidate. Exactly one must be the direct route.
  void add_candidate(const std::string& key, measure::TransferFn fn,
                     bool is_direct);

  /// Probes all candidates and recommends a route for `target_bytes`.
  [[nodiscard]]
  util::Result<PlannerReport> plan(std::uint64_t target_bytes) const;

 private:
  struct Candidate {
    std::string key;
    measure::TransferFn fn;
    bool is_direct;
  };

  Options options_;
  std::vector<Candidate> candidates_;
};

}  // namespace droute::core
