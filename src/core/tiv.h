// Throughput Triangle-Inequality-Violation (TIV) detection.
//
// Prior TIV work (refs [20]-[22] of the paper) studies latency; the paper's
// observation is that *bandwidth* TIVs exist too: the two-leg time
// t(a,via) + t(via,b) can undercut the direct t(a,b). This detector
// catalogues such violations from a measured transfer-time matrix.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/result.h"

namespace droute::core {

/// Measured transfer times (seconds) for one fixed payload size between
/// labelled endpoints. Missing pairs are simply not candidates.
class TimeMatrix {
 public:
  void set(const std::string& from, const std::string& to, double seconds);
  bool has(const std::string& from, const std::string& to) const;
  double get(const std::string& from, const std::string& to) const;
  std::vector<std::string> endpoints() const;

 private:
  std::map<std::pair<std::string, std::string>, double> times_;
  std::vector<std::string> order_;
};

struct TivViolation {
  std::string src;
  std::string via;
  std::string dst;
  double direct_s = 0.0;
  double detour_s = 0.0;            // leg1 + leg2 (store-and-forward)
  double speedup = 0.0;             // direct_s / detour_s, > 1 by definition

  bool operator<(const TivViolation& other) const {
    return speedup > other.speedup;  // strongest violation first
  }
};

/// All (src, via, dst) triples violating the triangle inequality by more
/// than `min_speedup` (1.0 = any violation). `overhead_s` is added to the
/// detour time to model store-and-forward hand-off costs.
std::vector<TivViolation> find_violations(const TimeMatrix& matrix,
                                          double min_speedup = 1.0,
                                          double overhead_s = 0.0);

}  // namespace droute::core
