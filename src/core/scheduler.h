// BatchScheduler — the operational artifact the paper gestures at:
// "Universities and institutions with the appropriate means can provide
// routing detours" (Sec I). A site operator queues transfer jobs; the
// scheduler routes each according to the overlay table (detours chosen by
// DetourPlanner / RouteAdvisor), bounds concurrency so the DTN is not
// overrun, honours priorities, and reports per-job outcomes + makespan.
//
// The scheduler is engine-agnostic: a Launcher callback starts one transfer
// asynchronously and reports completion. It never blocks — all sequencing
// rides the simulation (or real) event loop of whoever drives it.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/overlay.h"

namespace droute::core {

struct TransferJob {
  std::string id;          // unique, caller-chosen
  std::string client;      // label matching the overlay table
  std::string provider;    // label matching the overlay table
  std::uint64_t bytes = 0;
  int priority = 0;        // higher runs earlier
};

struct JobOutcome {
  std::string id;
  std::string route_key;   // route the scheduler chose
  double started_at = 0.0;
  double finished_at = 0.0;
  bool success = false;
  std::string error;

  double duration_s() const { return finished_at - started_at; }
};

class BatchScheduler {
 public:
  struct Options {
    int max_concurrent = 2;  // simultaneous transfers through the site
  };

  /// Launches one transfer over `route_key`; must invoke `done` exactly once.
  using Launcher = std::function<void(
      const TransferJob& job, const std::string& route_key,
      std::function<void(bool success, std::string error)> done)>;

  /// `now` supplies timestamps (the simulator clock in simulation).
  BatchScheduler(Options options, std::function<double()> now,
                 Launcher launcher);

  /// Routes come from here; jobs without an entry go "Direct".
  void use_overlay(const OverlayTable* overlay) { overlay_ = overlay; }

  /// Enqueues a job. Rejected (false) on duplicate id or zero size.
  bool submit(TransferJob job);

  /// Starts work (idempotent); newly submitted jobs auto-start while the
  /// scheduler is active and below its concurrency bound.
  void start();

  bool idle() const { return running_ == 0 && queue_.empty(); }
  int in_flight() const { return running_; }
  std::size_t queued() const { return queue_.size(); }

  const std::vector<JobOutcome>& outcomes() const { return outcomes_; }

  /// Wall-clock (per `now`) from first start to last completion; 0 if no
  /// job has finished.
  double makespan_s() const;

 private:
  void pump();
  void launch(TransferJob job);

  Options options_;
  std::function<double()> now_;
  Launcher launcher_;
  const OverlayTable* overlay_ = nullptr;
  std::vector<TransferJob> queue_;  // kept priority-sorted on insert
  std::map<std::string, bool> seen_ids_;
  int running_ = 0;
  bool active_ = false;
  std::vector<JobOutcome> outcomes_;
  std::optional<double> first_start_;
  double last_finish_ = 0.0;
};

}  // namespace droute::core
