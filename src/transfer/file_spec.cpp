#include "transfer/file_spec.h"

#include <cstdio>

#include "cloud/content.h"

namespace droute::transfer {

rsyncx::Md5Digest FileSpec::chunk_digest(std::uint64_t offset,
                                         std::uint64_t length) const {
  return cloud::synthetic_range_digest(seed, offset, length);
}

FileSpec make_file_mb(std::uint64_t megabytes, std::uint64_t seed) {
  FileSpec spec;
  char name[48];
  std::snprintf(name, sizeof(name), "random-%llumb-%016llx.bin",
                static_cast<unsigned long long>(megabytes),
                static_cast<unsigned long long>(seed));
  spec.name = name;
  spec.bytes = megabytes * 1000000ull;
  spec.seed = seed;
  return spec;
}

}  // namespace droute::transfer
