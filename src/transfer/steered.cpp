#include "transfer/steered.h"

#include <utility>

#include "obs/recorder.h"

namespace droute::transfer {

namespace {

/// Folds a leg task's join result back into the leg's own result struct
/// (same policy as detour.cpp: cancellation / escaped exceptions read as a
/// failed leg).
template <typename Leg>
Leg unwrap_leg(const util::Result<Leg>& joined, double now) {
  if (joined.ok()) return joined.value();
  Leg failed{};
  failed.success = false;
  failed.error = joined.error().message;
  failed.start_time = now;
  failed.end_time = now;
  return failed;
}

}  // namespace

sim::Task<SteeredResult> SteeredUploadEngine::upload_task(
    net::NodeId client, FileSpec file, SteeredOptions options) {
  sim::Simulator& simulator = *fabric_->simulator();
  SteeredResult result;
  result.start_time = simulator.now();
  result.payload_bytes = file.bytes;
  result.decision = steering_->steer(client, file.bytes);

  // Store-and-forward along the decided chain. An unroutable decision is
  // still executed (direct fallback) — the failure surfaces here exactly
  // as it would for a real client with no alternative.
  bool failed = false;
  net::NodeId src = client;
  for (const net::NodeId relay : result.decision.path.relays) {
    auto leg_task = rsync_.push_task(src, relay, file, options.rsync);
    const auto joined = co_await leg_task;
    const RsyncResult leg = unwrap_leg(joined, simulator.now());
    if (!leg.success) {
      result.error = "steered relay leg (" + std::to_string(src) + " -> " +
                     std::to_string(relay) + "): " + leg.error;
      failed = true;
      break;
    }
    src = relay;
  }
  if (!failed) {
    auto final_task = api_->upload_task(src, file, options.api);
    const auto joined = co_await final_task;
    const UploadResult final_leg = unwrap_leg(joined, simulator.now());
    if (final_leg.success) {
      result.success = true;
    } else {
      result.error = "steered API leg: " + final_leg.error;
    }
  }
  result.end_time = simulator.now();

  steering_->observe_session(client, result.decision, file.bytes,
                             result.duration_s(), result.success);
  obs::emit_span("transfer.steered_upload", obs::Clock::kSim,
                 result.start_time, result.end_time,
                 {{"path", result.decision.path.label()},
                  {"bytes", std::to_string(result.payload_bytes)},
                  {"ok", result.success ? "1" : "0"}});
  co_return result;
}

}  // namespace droute::transfer
