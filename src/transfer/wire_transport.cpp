#include "transfer/wire_transport.h"

#include <span>
#include <utility>

#include "wire/client.h"

namespace droute::transfer {

WireTransport::WireTransport() : epoch_(std::chrono::steady_clock::now()) {}  // analyze: allow(determinism-wall-clock) — the wire backend moves real bytes over real sockets; its clock is wall time by definition (timestamps never feed the sim schedule)

WireTransport::~WireTransport() {
  while (drain_one()) {
  }
}

double WireTransport::now() const {
  const auto elapsed = std::chrono::steady_clock::now() - epoch_;  // analyze: allow(determinism-wall-clock) — wall clock is the wire plane's native time base (see ctor waiver)
  return std::chrono::duration<double>(elapsed).count();
}

util::Result<Transport::OpId> WireTransport::start(
    const Segment& target, const TransferRequest& request, CompletionFn done) {
  if (request.opcode != Opcode::kWrite) {
    return util::Error::make("wire transport only supports WRITE");
  }
  if (target.wire_port == 0) {
    return util::Error::make("segment has no wire port");
  }
  if (request.source == nullptr) {
    return util::Error::make("wire request has no source buffer");
  }
  OpId id = kNoOp;
  Op* op = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    id = next_op_++;
    auto owned = std::make_unique<Op>();
    owned->done = std::move(done);
    op = owned.get();
    ops_.emplace(id, std::move(owned));
  }
  const std::uint16_t port = target.wire_port;
  const double rate = target.wire_rate_bytes_per_s;
  const std::uint8_t* data = request.source;
  const std::uint64_t length = request.length;
  op->worker = std::thread([this, id, op, port, rate, data, length] {
    Completion completion;
    if (op->cancel.load(std::memory_order_acquire)) {
      completion.fate = TransferFate::kAborted;
      completion.error = "wire upload cancelled before start";
      finish(id, std::move(completion));
      return;
    }
    const auto timing = wire::upload_direct(
        port, std::span<const std::uint8_t>(data, length), rate);
    if (!timing.ok()) {
      completion.fate = TransferFate::kLinkFailed;
      completion.error = timing.error().message;
    } else if (!timing.value().digest_ok) {
      completion.fate = TransferFate::kLinkFailed;
      completion.error = "wire digest mismatch";
    } else {
      completion.fate = TransferFate::kCompleted;
      completion.bytes = length;
    }
    finish(id, std::move(completion));
  });
  return id;
}

void WireTransport::finish(OpId id, Completion completion) {
  std::lock_guard<std::mutex> lock(mutex_);
  ops_.at(id)->completion = std::move(completion);
  finished_.push_back(id);
  cv_.notify_all();
}

void WireTransport::cancel(OpId op) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = ops_.find(op);
  if (it != ops_.end()) {
    it->second->cancel.store(true, std::memory_order_release);
  }
}

bool WireTransport::drain_one() {
  std::unique_ptr<Op> op;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (ops_.empty()) return false;
    cv_.wait(lock, [this] { return !finished_.empty(); });
    const OpId id = finished_.front();
    finished_.pop_front();
    auto it = ops_.find(id);
    op = std::move(it->second);
    ops_.erase(it);
  }
  op->worker.join();
  // Deliver on the draining thread: the batch layer's single-thread rule.
  op->done(op->completion);
  return true;
}

}  // namespace droute::transfer
