// Batched transfer engine (DESIGN.md §15): one submission API over every
// backend.
//
// A TransferEngine owns a registry of Segments (named remote endpoints) and
// turns a vector of TransferRequests into one awaitable BatchHandle:
//
//   auto batch = engine.submit_batch(std::move(requests));
//   const bool all_ok = co_await batch;          // sim transports
//   for (std::size_t i = 0; i < batch.size(); ++i) use(batch.status(i));
//
// Per-request statuses support partial-failure reporting: each request
// settles independently (completed / rejected / aborted / link-failed) and
// the batch as a whole settles when the last request does.
//
// Launch is deferred: requests hit the Transport inside the awaiter's
// await_suspend (or an explicit start()/wait()), never at submit time. This
// is what makes the six legacy engines event-schedule-identical to their
// pre-batch form — a single-request batch starts its flow at exactly the
// co_await point where `co_await net::transfer(...)` used to start it, the
// completion resumes the awaiter in the same sim event the flow callback
// used to, and a parent task cancelled before the co_await never touches
// the fabric at all (every request settles as kCancelled with the legacy
// "transfer cancelled before start" reason).
//
// Cancellation is cooperative via sim::Task: cancelling the awaiting task
// cancels the batch, which aborts in-flight requests in index order (the
// same order the old sim::all_of cascade unwound stripe joins) and settles
// unstarted ones without touching the transport. A cancelled batch releases
// every per-request resource synchronously on sim transports — no pending
// sim events, no live flows — and always decrements transfer.batch_inflight
// exactly once, even when the handle itself is dropped (the chaos harness
// audits this).
//
// Awaiting is lvalue-only (&-qualified awaiter methods), matching the rest
// of the Task layer (GCC PR 99576 family).
#pragma once

#include <coroutine>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "net/topology.h"
#include "sim/task.h"
#include "transfer/transport.h"
#include "util/result.h"

namespace droute::obs {
class Counter;
class Gauge;
}  // namespace droute::obs

namespace droute::transfer {

/// Identifies a registered Segment; 0 is invalid.
using SegmentId = std::uint32_t;
inline constexpr SegmentId kInvalidSegment = 0;

/// A named remote endpoint requests are addressed to. Sim transports use
/// `node`; wire transports use `wire_port` (+ optional egress policing).
struct Segment {
  std::string name;
  net::NodeId node = net::kInvalidNode;
  std::uint16_t wire_port = 0;
  double wire_rate_bytes_per_s = 0.0;  // <= 0: unpoliced first hop
};

enum class Opcode : std::uint8_t { kRead, kWrite };

/// One asynchronous transfer: move `length` bytes between the local source
/// and [target_offset, target_offset+length) of the target segment.
struct TransferRequest {
  Opcode opcode = Opcode::kWrite;
  /// Sim transports: the local endpoint node (WRITE flows source_node ->
  /// segment.node; READ flows segment.node -> source_node).
  net::NodeId source_node = net::kInvalidNode;
  /// Wire transports: the local buffer holding `length` bytes (WRITE only).
  const std::uint8_t* source = nullptr;
  SegmentId target_id = kInvalidSegment;
  std::uint64_t target_offset = 0;
  std::uint64_t length = 0;
  /// Charge the TCP slow-start ramp (first request of a warm connection).
  bool charge_slow_start = true;
  /// Flow label for debugging / cross-traffic identification.
  std::string label;
};

enum class RequestState : std::uint8_t {
  kPending,     // submitted, not yet handed to the transport
  kInFlight,    // transport accepted it; completion pending
  kCompleted,   // all bytes moved
  kRejected,    // transport refused synchronously (`error` holds the reason)
  kAborted,     // cancelled / aborted while in flight
  kLinkFailed,  // ran, but the path died mid-transfer
  kCancelled,   // batch cancelled before the transport ever saw it
};

/// Per-request outcome, pollable at any time through BatchHandle::status().
struct RequestStatus {
  RequestState state = RequestState::kPending;
  std::string error;        // reason for kRejected / kCancelled / failures
  std::uint64_t bytes = 0;  // wire bytes moved (kCompleted)
  double start_s = 0.0;     // transport clock at start (settle time if never started)
  double end_s = 0.0;       // transport clock at settle

  double duration_s() const { return end_s - start_s; }
  bool settled() const {
    return state != RequestState::kPending && state != RequestState::kInFlight;
  }
  bool completed() const { return state == RequestState::kCompleted; }
  /// The request never ran: refused synchronously or cancelled pre-start.
  /// Legacy engines surface these as "<leg> flow rejected: <error>".
  bool rejected() const {
    return state == RequestState::kRejected ||
           state == RequestState::kCancelled;
  }
  /// The transport actually moved (or tried to move) bytes for it.
  bool ran() const {
    return state == RequestState::kCompleted ||
           state == RequestState::kAborted ||
           state == RequestState::kLinkFailed;
  }
};

struct BatchOptions {
  /// Max requests in flight at once; 0 = unlimited (all launch together,
  /// in index order). With a cap, a settling request starts the next
  /// pending one synchronously inside its completion.
  std::size_t concurrency = 0;
  /// Stop launching after the first synchronous rejection and make the
  /// batch awaitable-ready immediately: unstarted requests settle as
  /// kCancelled and already-started ones finish detached (the batch state
  /// stays alive through the transport callbacks until they settle). This
  /// is the legacy parallel-stripe contract: report the rejection once,
  /// let in-flight stripes drain.
  bool fail_fast = false;
};

class TransferEngine;

namespace detail {

/// Shared batch bookkeeping. Held by shared_ptr from the BatchHandle and
/// from every in-flight transport completion callback, so a dropped handle
/// cannot strand settlement (or the inflight gauge).
class BatchState : public std::enable_shared_from_this<BatchState> {
 public:
  BatchState(TransferEngine* engine, Transport* transport,
             std::vector<TransferRequest> requests, BatchOptions options);

  /// Hands requests to the transport (respecting the concurrency cap).
  /// Idempotent; a no-op after cancel_before_start().
  void launch();

  /// Cancels the batch: pending requests settle as kCancelled, in-flight
  /// ones are cancelled through the transport in index order (synchronous
  /// settle on sim transports).
  void cancel();

  /// The awaiting task was cancelled before the batch launched: settle
  /// every request as kCancelled with the legacy pre-start reason, without
  /// touching the transport.
  void cancel_before_start();

  bool launched() const { return launched_; }
  bool cancelled() const { return cancelled_; }
  bool all_settled() const { return settled_ == slots_.size(); }
  /// The awaiter may resume: everything settled, or fail_fast tripped.
  bool resume_ready() const { return all_settled() || tripped_; }
  bool all_completed() const { return completed_ == slots_.size(); }
  std::size_t size() const { return slots_.size(); }
  const RequestStatus& status(std::size_t i) const;

  /// Registers the one-shot resume hook; fires as soon as resume_ready().
  void set_waiter(std::function<void()> waiter);

  /// Pumps a blocking transport until this batch fully settles.
  void drain_blocking();

 private:
  struct Slot {
    TransferRequest request;
    RequestStatus status;
    Transport::OpId op = Transport::kNoOp;
  };

  void pump();                     // launch while the cap allows
  void start_one(std::size_t i);
  void on_complete(std::size_t i, const Transport::Completion& completion);
  void settle(std::size_t i, RequestState state, std::string error,
              std::uint64_t bytes);
  void trip_fail_fast();
  void cancel_before_start_locked();
  void maybe_finish();             // waiter + engine bookkeeping

  TransferEngine* engine_;
  Transport* transport_;
  BatchOptions options_;
  std::vector<Slot> slots_;
  std::size_t next_to_start_ = 0;
  std::size_t in_flight_ = 0;
  std::size_t settled_ = 0;
  std::size_t completed_ = 0;
  bool launched_ = false;
  bool cancelled_ = false;
  bool tripped_ = false;
  bool finished_ = false;  // engine notified (inflight gauge decremented)
  std::function<void()> waiter_;
};

}  // namespace detail

/// Joinable view of one submitted batch. Copyable (shares state); awaiting
/// from a sim::Task launches the batch and parks until it settles, and
/// cancelling the awaiting task cancels the batch.
class BatchHandle {
 public:
  explicit BatchHandle(std::shared_ptr<detail::BatchState> state)
      : state_(std::move(state)) {}

  /// Explicitly launches the batch (polling / blocking drivers; co_await
  /// launches implicitly). Idempotent.
  void start() { state_->launch(); }

  /// Blocking join for transports whose completions need pumping (wire).
  /// Launches if necessary; returns ok(). Event-driven transports settle
  /// through their own loop instead — run the simulator and poll done().
  bool wait();

  /// Cancels the batch (see BatchState::cancel for ordering guarantees).
  void cancel() { state_->cancel(); }

  bool done() const { return state_->all_settled(); }
  bool ok() const { return state_->all_completed(); }
  bool cancelled() const { return state_->cancelled(); }
  std::size_t size() const { return state_->size(); }
  const RequestStatus& status(std::size_t i) const {
    return state_->status(i);
  }

  // --- awaiter interface (lvalue-only, like the rest of the Task layer) ---

  bool await_ready() const& {
    return state_->launched() && state_->resume_ready();
  }

  template <typename Promise>
  bool await_suspend(std::coroutine_handle<Promise> handle) & {
    if constexpr (std::is_base_of_v<sim::TaskPromiseBase, Promise>) {
      if (handle.promise().cancel_requested() && !state_->launched()) {
        // Task already cancelled: do not put bytes on the wire. Mirrors the
        // legacy TransferAwaitable guard, reason string included.
        state_->cancel_before_start();
        return false;  // resume immediately
      }
    }
    state_->launch();
    if (state_->resume_ready()) return false;  // settled synchronously
    if constexpr (std::is_base_of_v<sim::TaskPromiseBase, Promise>) {
      state_->set_waiter([handle] {
        handle.promise().disarm_canceller();
        handle.resume();
      });
      std::shared_ptr<detail::BatchState> state = state_;
      handle.promise().arm_canceller([state] { state->cancel(); });
    } else {
      state_->set_waiter([handle] { handle.resume(); });
    }
    return true;
  }

  /// True when every request completed (partial failures poll status()).
  bool await_resume() const& { return state_->all_completed(); }

 private:
  std::shared_ptr<detail::BatchState> state_;
};

/// The batched transfer engine: segment registry + batch submission over
/// one Transport backend. Engines embed one per backend; it must outlive
/// every batch it submitted (and, for detached fail-fast batches, the
/// transport events that settle them).
class TransferEngine {
 public:
  explicit TransferEngine(Transport* transport);
  TransferEngine(const TransferEngine&) = delete;
  TransferEngine& operator=(const TransferEngine&) = delete;

  /// Registers a remote endpoint; the returned id addresses it in requests.
  SegmentId register_segment(Segment segment);

  /// Idempotent per-node registration for sim transports: returns the
  /// existing segment for `node` or registers a fresh one.
  SegmentId ensure_node_segment(net::NodeId node);

  /// nullptr for an unknown id.
  const Segment* segment(SegmentId id) const;

  /// Submits a batch (deferred launch — see BatchHandle). Requests must be
  /// non-empty; unknown target segments settle as kRejected at launch.
  BatchHandle submit_batch(std::vector<TransferRequest> requests,
                           BatchOptions options = {});

  /// Single-request convenience over submit_batch().
  BatchHandle submit(TransferRequest request, BatchOptions options = {});

  /// Batches submitted but not yet fully settled — the chaos leak audit
  /// holds this at zero after every drain.
  std::size_t batches_inflight() const { return batches_inflight_; }

  Transport* transport() const { return transport_; }

 private:
  friend class detail::BatchState;
  void on_batch_settled();

  Transport* transport_;
  std::vector<Segment> segments_;  // id - 1 indexed
  std::map<net::NodeId, SegmentId> node_segments_;
  std::size_t batches_inflight_ = 0;
  // obs handles (null when recording is disabled at construction).
  obs::Counter* obs_batches_ = nullptr;
  obs::Counter* obs_requests_ = nullptr;
  obs::Gauge* obs_inflight_ = nullptr;
};

}  // namespace droute::transfer
