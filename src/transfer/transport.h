// Transport: the backend seam of the batched TransferEngine (DESIGN.md §15).
//
// A Transport moves one TransferRequest's bytes to (or from) a registered
// Segment and reports how the attempt ended. Two families implement it:
//
//   * event-driven (SimTransport): start() schedules work on the simulated
//     fabric and the completion callback fires from inside the sim event
//     loop — possibly synchronously during cancel();
//   * blocking (WireTransport): start() hands the request to a worker and
//     completions are delivered only when the *joining* caller pumps
//     drain_one(), so batch state never needs cross-thread locking.
//
// The split keeps BatchState single-threaded in both worlds: whoever owns
// the batch (a sim::Task or a blocking wait()) is the only thread that ever
// observes request statuses mutate.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "util/result.h"

namespace droute::sim {
class Simulator;
}  // namespace droute::sim

namespace droute::transfer {

struct Segment;
struct TransferRequest;

/// How one request ended. Mirrors RequestState's terminal values.
enum class TransferFate : std::uint8_t {
  kCompleted,   // all bytes moved and verified
  kAborted,     // cancelled while in flight
  kLinkFailed,  // the path (or socket) died mid-transfer
};

class Transport {
 public:
  /// Opaque in-flight operation handle; 0 is "no operation".
  using OpId = std::uint64_t;
  static constexpr OpId kNoOp = 0;

  struct Completion {
    TransferFate fate = TransferFate::kCompleted;
    std::uint64_t bytes = 0;  // wire bytes actually moved
    std::string error;        // detail for non-completed fates (may be empty)
  };
  using CompletionFn = std::function<void(const Completion&)>;

  virtual ~Transport() = default;

  /// Starts moving `request` against `target`. On acceptance the returned
  /// OpId identifies the operation and `done` fires exactly once when it
  /// settles; a synchronous refusal returns the reason instead and `done`
  /// never fires.
  [[nodiscard]] virtual util::Result<OpId> start(const Segment& target,
                                                 const TransferRequest& request,
                                                 CompletionFn done) = 0;

  /// Requests cancellation of an in-flight operation. Event-driven
  /// transports complete it synchronously with kAborted; blocking
  /// transports abort it at the next safe point (delivered via drain_one).
  virtual void cancel(OpId op) = 0;

  /// Blocking transports: park until one started operation finishes, fire
  /// its completion on the calling thread, return true. Event-driven
  /// transports return false (completions arrive through the event loop).
  virtual bool drain_one() { return false; }

  /// Transport-local clock used to stamp request statuses: simulated
  /// seconds for SimTransport, wall seconds for WireTransport.
  virtual double now() const = 0;

  /// The simulator driving an event-driven transport; nullptr for blocking
  /// transports (batches over them are joined with wait(), not co_await).
  virtual sim::Simulator* simulator() const { return nullptr; }
};

}  // namespace droute::transfer
