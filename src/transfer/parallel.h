// Parallel-stream push: stripe one file across N concurrent TCP streams —
// the classic DTN/GridFTP trick for defeating *per-flow* policers and
// window limits.
//
// This is the mitigation the paper's detour implicitly competes with: N
// streams through the policed PacificWave hop would get ~N x the per-flow
// rate. The catch, and the reason the detour still matters: the providers'
// upload APIs are strictly sequential (server-enforced in-order offsets, see
// StorageServer::append_chunk), so parallel streams can accelerate the
// client->DTN leg but can never accelerate the API leg. The ablation bench
// (bench_abl_streams) quantifies both facts.
#pragma once

#include <functional>
#include <string>

#include "net/fabric.h"
#include "sim/task.h"
#include "transfer/batch.h"
#include "transfer/file_spec.h"
#include "transfer/sim_transport.h"

namespace droute::transfer {

struct ParallelPushResult {
  bool success = false;
  std::string error;
  double start_time = 0.0;
  double end_time = 0.0;
  std::uint64_t payload_bytes = 0;
  int streams = 0;
  double slowest_stream_s = 0.0;  // completion is gated by the last stripe

  double duration_s() const { return end_time - start_time; }
};

class ParallelPushEngine {
 public:
  using Callback = std::function<void(const ParallelPushResult&)>;

  explicit ParallelPushEngine(net::Fabric* fabric)
      : fabric_(fabric), transport_(fabric), xfer_(&transport_) {}

  /// Coroutine form: pushes `file` from src to dst over `streams`
  /// concurrent flows — one fail-fast batch with one WRITE request per
  /// contiguous stripe. streams must be >= 1.
  sim::Task<ParallelPushResult> push_task(net::NodeId src, net::NodeId dst,
                                          FileSpec file, int streams);

  /// Legacy callback shim over push_task(); `done` fires exactly once.
  void push(net::NodeId src, net::NodeId dst, const FileSpec& file,
            int streams, Callback done);

  /// The batched submission layer the stripe fan-out routes through.
  TransferEngine& batch_engine() { return xfer_; }

 private:
  net::Fabric* fabric_;
  SimTransport transport_;
  TransferEngine xfer_;
};

}  // namespace droute::transfer
