#include "transfer/api_download.h"

#include <vector>

#include "check/contract.h"
#include "cloud/provider.h"

namespace droute::transfer {

struct ApiDownloadEngine::Job {
  net::NodeId client = net::kInvalidNode;
  std::string name;
  Callback done;
  DownloadResult result;
  cloud::StoredObject object;
  std::vector<std::uint64_t> chunks;
  std::size_t next_chunk = 0;
  std::uint64_t offset = 0;
  cloud::ChunkDigester digester;
};

ApiDownloadEngine::ApiDownloadEngine(net::Fabric* fabric,
                                     cloud::StorageServer* server,
                                     net::NodeId server_node)
    : fabric_(fabric), server_(server), server_node_(server_node) {
  DROUTE_CHECK(fabric_ && server_, "ApiDownloadEngine: null dependency");
}

void ApiDownloadEngine::fail(std::shared_ptr<Job> job, std::string error) {
  job->result.success = false;
  job->result.error = std::move(error);
  job->result.end_time = fabric_->simulator()->now();
  job->done(job->result);
}

void ApiDownloadEngine::download(net::NodeId client, const std::string& name,
                                 Callback done, ApiDownloadOptions options) {
  auto job = std::make_shared<Job>();
  job->client = client;
  job->name = name;
  job->done = std::move(done);
  job->result.start_time = fabric_->simulator()->now();

  auto rtt = fabric_->rtt_s(client, server_node_);
  if (!rtt.ok()) {
    fail(job, "no route to provider: " + rtt.error().message);
    return;
  }
  job->result.rtt_s = rtt.value();

  double preamble_rtts = 1.0;  // metadata GET
  if (options.oauth != nullptr) {
    bool refreshed = false;
    options.oauth->ensure_token(fabric_->simulator()->now(), &refreshed);
    if (refreshed) preamble_rtts += 1.0;
  }

  auto object = server_->stat(name);
  if (!object.ok()) {
    fail(job, "metadata: " + object.error().message);
    return;
  }
  job->object = object.value();
  job->result.payload_bytes = job->object.size;

  auto chunks = cloud::chunk_sizes(server_->profile(), job->object.size);
  if (!chunks.ok()) {
    fail(job, chunks.error().message);
    return;
  }
  job->chunks = std::move(chunks).value();

  fabric_->simulator()->schedule_in(preamble_rtts * job->result.rtt_s,
                                    [this, job] { fetch_next_chunk(job); });
}

void ApiDownloadEngine::fetch_next_chunk(std::shared_ptr<Job> job) {
  if (job->next_chunk == job->chunks.size()) {
    // All ranges received: verify the digest chain against the committed
    // object digest (same accumulation the upload produced).
    const auto accumulated = job->digester.finish();
    job->result.integrity_ok = accumulated == job->object.md5;
    job->result.success = job->result.integrity_ok;
    if (!job->result.integrity_ok) {
      job->result.error = "download integrity check failed";
    }
    job->result.end_time = fabric_->simulator()->now();
    job->done(job->result);
    return;
  }

  const std::uint64_t chunk = job->chunks[job->next_chunk];
  auto range = server_->read_range(job->name, job->offset, chunk);
  if (!range.ok()) {
    fail(job, "range request: " + range.error().message);
    return;
  }
  const auto expected_digest = range.value();

  net::FlowOptions flow_options;
  flow_options.charge_slow_start = job->next_chunk == 0;
  flow_options.label = "api-download-chunk";
  const std::uint64_t wire =
      chunk + server_->profile().per_chunk_header_bytes;

  // Each ranged GET costs a request turnaround before the body streams.
  fabric_->simulator()->schedule_in(
      server_->profile().per_chunk_rtts * job->result.rtt_s,
      [this, job, wire, chunk, expected_digest, flow_options] {
        auto flow = fabric_->start_flow(
            server_node_, job->client, wire,
            [this, job, chunk, expected_digest](const net::FlowStats& stats) {
              if (stats.outcome != net::FlowOutcome::kCompleted) {
                fail(job, "download chunk flow failed");
                return;
              }
              job->digester.add_chunk(expected_digest);
              job->offset += chunk;
              ++job->next_chunk;
              ++job->result.chunks;
              fetch_next_chunk(job);
            },
            flow_options);
        if (!flow.ok()) {
          fail(job, "download flow rejected: " + flow.error().message);
        }
      });
}

}  // namespace droute::transfer
