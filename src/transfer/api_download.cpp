#include "transfer/api_download.h"

#include <utility>
#include <vector>

#include "check/contract.h"
#include "cloud/provider.h"

namespace droute::transfer {

ApiDownloadEngine::ApiDownloadEngine(net::Fabric* fabric,
                                     cloud::StorageServer* server,
                                     net::NodeId server_node)
    : fabric_(fabric), server_(server), server_node_(server_node),
      transport_(fabric), xfer_(&transport_) {
  DROUTE_CHECK(fabric_ && server_, "ApiDownloadEngine: null dependency");
  server_segment_ = xfer_.ensure_node_segment(server_node_);
}

sim::Task<DownloadResult> ApiDownloadEngine::download_task(
    net::NodeId client, std::string name, ApiDownloadOptions options) {
  sim::Simulator& simulator = *fabric_->simulator();
  DownloadResult result;
  result.start_time = simulator.now();

  auto fail = [&](std::string error) -> DownloadResult {
    result.success = false;
    result.error = std::move(error);
    result.end_time = simulator.now();
    return result;
  };

  auto rtt = fabric_->rtt_s(client, server_node_);
  if (!rtt.ok()) {
    co_return fail("no route to provider: " + rtt.error().message);
  }
  result.rtt_s = rtt.value();

  double preamble_rtts = 1.0;  // metadata GET
  if (options.oauth != nullptr) {
    bool refreshed = false;
    options.oauth->ensure_token(simulator.now(), &refreshed);
    if (refreshed) preamble_rtts += 1.0;
  }

  auto stat = server_->stat(name);
  if (!stat.ok()) {
    co_return fail("metadata: " + stat.error().message);
  }
  const cloud::StoredObject object = stat.value();
  result.payload_bytes = object.size;

  auto chunk_plan = cloud::chunk_sizes(server_->profile(), object.size);
  if (!chunk_plan.ok()) {
    co_return fail(chunk_plan.error().message);
  }
  const std::vector<std::uint64_t> chunks = std::move(chunk_plan).value();

  auto preamble = sim::delay(simulator, preamble_rtts * result.rtt_s);
  if (!co_await preamble) {
    co_return fail("download cancelled during metadata preamble");
  }

  cloud::ChunkDigester digester;
  std::uint64_t offset = 0;
  for (std::size_t next_chunk = 0; next_chunk < chunks.size(); ++next_chunk) {
    const std::uint64_t chunk = chunks[next_chunk];
    auto range = server_->read_range(name, offset, chunk);
    if (!range.ok()) {
      co_return fail("range request: " + range.error().message);
    }
    const auto expected_digest = range.value();

    const std::uint64_t wire =
        chunk + server_->profile().per_chunk_header_bytes;

    // Each ranged GET costs a request turnaround before the body streams.
    auto turnaround =
        sim::delay(simulator, server_->profile().per_chunk_rtts * result.rtt_s);
    if (!co_await turnaround) {
      co_return fail("download cancelled between chunks");
    }
    TransferRequest get_request;
    get_request.opcode = Opcode::kRead;  // body streams server -> client
    get_request.source_node = client;
    get_request.target_id = server_segment_;
    get_request.target_offset = offset;
    get_request.length = wire;
    get_request.charge_slow_start = next_chunk == 0;
    get_request.label = "api-download-chunk";
    auto get = xfer_.submit(std::move(get_request));
    if (!co_await get) {
      const RequestStatus& st = get.status(0);
      if (st.rejected()) {
        co_return fail("download flow rejected: " + st.error);
      }
      co_return fail("download chunk flow failed");
    }
    digester.add_chunk(expected_digest);
    offset += chunk;
    ++result.chunks;
  }

  // All ranges received: verify the digest chain against the committed
  // object digest (same accumulation the upload produced).
  const auto accumulated = digester.finish();
  result.integrity_ok = accumulated == object.md5;
  result.success = result.integrity_ok;
  if (!result.integrity_ok) {
    result.error = "download integrity check failed";
  }
  result.end_time = simulator.now();
  co_return result;
}

void ApiDownloadEngine::download(net::NodeId client, const std::string& name,
                                 Callback done, ApiDownloadOptions options) {
  // Folded task_shim: the Task error channel (escaped exception,
  // cancellation) maps back onto {success, error}; `done` fires exactly once.
  sim::Simulator* simulator = fabric_->simulator();
  auto task = download_task(client, name, options);
  task.on_done([done = std::move(done),
                simulator](const util::Result<DownloadResult>& result) {
    if (result.ok()) {
      done(result.value());
      return;
    }
    DownloadResult failed{};
    failed.success = false;
    failed.error = result.error().message;
    failed.start_time = failed.end_time = simulator->now();
    done(failed);
  });
}

}  // namespace droute::transfer
