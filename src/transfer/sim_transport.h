// SimTransport: the event-driven Transport over net::Fabric flows.
//
// One TransferRequest maps to exactly one fabric flow — WRITE flows
// source_node -> segment.node, READ the reverse — started at start() time
// (never earlier: the batch layer defers to the awaiter, which is what
// keeps flow-id allocation order, and therefore the whole event schedule,
// identical to the pre-batch engines). cancel() is Fabric::abort_flow,
// which fires the completion synchronously with kAborted, so a cancelled
// batch settles before cancel() returns and leaves no pending sim events.
#pragma once

#include "net/fabric.h"
#include "transfer/batch.h"
#include "transfer/transport.h"

namespace droute::transfer {

class SimTransport final : public Transport {
 public:
  explicit SimTransport(net::Fabric* fabric) : fabric_(fabric) {}

  [[nodiscard]] util::Result<OpId> start(const Segment& target,
                                         const TransferRequest& request,
                                         CompletionFn done) override;
  void cancel(OpId op) override { fabric_->abort_flow(op); }
  double now() const override { return fabric_->simulator()->now(); }
  sim::Simulator* simulator() const override { return fabric_->simulator(); }

  net::Fabric* fabric() const { return fabric_; }

 private:
  net::Fabric* fabric_;
};

}  // namespace droute::transfer
