#include "transfer/detour.h"

#include <memory>
#include <vector>

#include "obs/recorder.h"
#include "util/logging.h"

namespace droute::transfer {

namespace {

const char* mode_name(DetourMode mode) {
  return mode == DetourMode::kStoreAndForward ? "store_and_forward"
                                              : "pipelined";
}

// Whole-detour trace span, emitted once per transfer on any outcome. Leg
// spans are emitted separately as the legs complete.
void emit_detour_span(const DetourResult& result) {
  if (!obs::enabled()) return;
  obs::emit_span("transfer.detour", obs::Clock::kSim, result.start_time,
                 result.end_time,
                 {{"mode", mode_name(result.mode)},
                  {"bytes", std::to_string(result.payload_bytes)},
                  {"ok", result.success ? "1" : "0"}});
}

}  // namespace

void DetourEngine::transfer(net::NodeId client, net::NodeId intermediate,
                            const FileSpec& file, Callback done,
                            DetourOptions options) {
  if (options.mode == DetourMode::kStoreAndForward) {
    store_and_forward(client, intermediate, file, std::move(done), options);
  } else {
    pipelined(client, intermediate, file, std::move(done), options);
  }
}

void DetourEngine::store_and_forward(net::NodeId client,
                                     net::NodeId intermediate,
                                     const FileSpec& file, Callback done,
                                     DetourOptions options) {
  auto result = std::make_shared<DetourResult>();
  result->mode = DetourMode::kStoreAndForward;
  result->start_time = fabric_->simulator()->now();
  result->payload_bytes = file.bytes;

  rsync_.push(
      client, intermediate, file,
      [this, intermediate, file, done, result,
       options](const RsyncResult& leg1) {
        result->leg1_s = leg1.duration_s();
        const double leg1_end = fabric_->simulator()->now();
        obs::emit_span("transfer.detour_leg1", obs::Clock::kSim,
                       result->start_time, leg1_end);
        if (!leg1.success) {
          result->error = "detour leg 1 (rsync): " + leg1.error;
          result->end_time = leg1_end;
          emit_detour_span(*result);
          done(*result);
          return;
        }
        api_->upload(
            intermediate, file,
            [this, done, result, leg1_end](const UploadResult& leg2) {
              result->leg2_s = leg2.duration_s();
              result->success = leg2.success;
              if (!leg2.success) {
                result->error = "detour leg 2 (API): " + leg2.error;
              }
              result->end_time = fabric_->simulator()->now();
              obs::emit_span("transfer.detour_leg2", obs::Clock::kSim,
                             leg1_end, result->end_time);
              emit_detour_span(*result);
              done(*result);
            },
            options.api);
      },
      options.rsync);
}

// ---------------------------------------------------------------------------
// Pipelined relay: API-sized chunks stream through the DTN. Chunk i+1 crosses
// the first leg while chunk i crosses the second.

namespace {
struct PipelineJob {
  net::NodeId client;
  net::NodeId intermediate;
  FileSpec file;
  DetourEngine::Callback done;
  std::shared_ptr<DetourResult> result;
  std::vector<std::uint64_t> chunks;
  double rtt1 = 0.0;   // client <-> intermediate
  double rtt2 = 0.0;   // intermediate <-> provider
  std::size_t leg1_next = 0;    // next chunk to send on leg 1
  std::size_t leg2_next = 0;    // next chunk to upload on leg 2
  std::size_t arrived = 0;      // chunks fully received at the DTN
  bool leg2_busy = false;
  bool failed = false;
  std::uint64_t leg1_offset = 0;
  std::uint64_t leg2_offset = 0;
  cloud::SessionId session = 0;
  cloud::ChunkDigester digester;
  // The pump closures live on the job so in-flight callbacks can re-enter
  // them. They capture the job weakly: the job owns the closures without
  // the closures owning the job back, so the whole graph frees once the
  // last in-flight callback drops its reference (no shared_ptr cycle).
  std::function<void()> pump_leg1;
  std::function<void()> pump_leg2;
};
}  // namespace

void DetourEngine::pipelined(net::NodeId client, net::NodeId intermediate,
                             const FileSpec& file, Callback done,
                             DetourOptions options) {
  // Pipelined relay authenticates once up front; per-chunk OAuth costs are
  // identical to the direct path and folded into the session handshake.
  (void)options;
  auto job = std::make_shared<PipelineJob>();
  job->client = client;
  job->intermediate = intermediate;
  job->file = file;
  job->done = std::move(done);
  job->result = std::make_shared<DetourResult>();
  job->result->mode = DetourMode::kPipelined;
  job->result->start_time = fabric_->simulator()->now();
  job->result->payload_bytes = file.bytes;

  // Captures only `this` — never the job — so storing it inside the job's
  // pump closures cannot create an ownership cycle.
  auto fail = [this](const std::shared_ptr<PipelineJob>& self,
                     const std::string& error) {
    if (self->failed) return;
    self->failed = true;
    if (self->session != 0) api_->server()->abandon(self->session);
    self->result->error = error;
    self->result->end_time = fabric_->simulator()->now();
    emit_detour_span(*self->result);
    self->done(*self->result);
  };

  auto rtt1 = fabric_->rtt_s(client, intermediate);
  auto rtt2 = fabric_->rtt_s(intermediate, api_->server_node());
  if (!rtt1.ok() || !rtt2.ok()) {
    fail(job, "pipelined detour: unroutable leg");
    return;
  }
  job->rtt1 = rtt1.value();
  job->rtt2 = rtt2.value();

  auto chunks = cloud::chunk_sizes(api_->server()->profile(), file.bytes);
  if (!chunks.ok()) {
    fail(job, chunks.error().message);
    return;
  }
  job->chunks = std::move(chunks).value();

  auto session = api_->server()->create_session(file.name, file.bytes, file.seed);
  if (!session.ok()) {
    fail(job, session.error().message);
    return;
  }
  job->session = session.value();

  const std::weak_ptr<PipelineJob> weak = job;

  // Leg-2 uploader: drains arrived chunks sequentially.
  job->pump_leg2 = [this, fail, weak]() {
    auto self = weak.lock();
    if (!self || self->failed || self->leg2_busy) return;
    if (self->leg2_next == self->chunks.size()) {
      // Everything uploaded: finalize.
      self->leg2_busy = true;
      fabric_->simulator()->schedule_in(
          api_->server()->profile().finalize_rtts * self->rtt2,
          [this, self, fail] {
            auto object =
                api_->server()->finalize(self->session,
                                         self->digester.finish());
            if (!object.ok()) {
              self->session = 0;
              fail(self, "pipelined finalize: " + object.error().message);
              return;
            }
            self->result->success = true;
            self->result->end_time = fabric_->simulator()->now();
            emit_detour_span(*self->result);
            self->done(*self->result);
          });
      return;
    }
    if (self->leg2_next >= self->arrived) return;  // wait for leg 1
    self->leg2_busy = true;
    const std::uint64_t chunk = self->chunks[self->leg2_next];
    net::FlowOptions flow_options;
    flow_options.charge_slow_start = self->leg2_next == 0;
    flow_options.label = "relay-leg2";
    const std::uint64_t wire =
        chunk + api_->server()->profile().per_chunk_header_bytes;
    auto flow = fabric_->start_flow(
        self->intermediate, api_->server_node(), wire,
        [this, self, fail](const net::FlowStats& stats) {
          if (stats.outcome != net::FlowOutcome::kCompleted) {
            fail(self, "pipelined leg 2 flow failed");
            return;
          }
          const std::uint64_t done_bytes = self->chunks[self->leg2_next];
          const auto digest =
              self->file.chunk_digest(self->leg2_offset, done_bytes);
          const auto status = api_->server()->append_chunk(
              self->session, self->leg2_offset, done_bytes, digest);
          if (!status.ok()) {
            fail(self, "pipelined append: " + status.error().message);
            return;
          }
          self->digester.add_chunk(digest);
          self->leg2_offset += done_bytes;
          ++self->leg2_next;
          fabric_->simulator()->schedule_in(
              api_->server()->profile().per_chunk_rtts * self->rtt2,
              [self] {
                self->leg2_busy = false;
                self->pump_leg2();
              });
        },
        flow_options);
    if (!flow.ok()) {
      fail(self, "pipelined leg 2 rejected: " + flow.error().message);
    }
  };

  // Leg-1 sender: relays chunks to the DTN back-to-back.
  job->pump_leg1 = [this, fail, weak]() {
    auto self = weak.lock();
    if (!self || self->failed || self->leg1_next == self->chunks.size()) {
      return;
    }
    const std::uint64_t chunk = self->chunks[self->leg1_next];
    net::FlowOptions flow_options;
    flow_options.charge_slow_start = self->leg1_next == 0;
    flow_options.label = "relay-leg1";
    auto flow = fabric_->start_flow(
        self->client, self->intermediate, chunk,
        [this, self, fail](const net::FlowStats& stats) {
          if (stats.outcome != net::FlowOutcome::kCompleted) {
            fail(self, "pipelined leg 1 flow failed");
            return;
          }
          self->leg1_offset += self->chunks[self->leg1_next];
          ++self->leg1_next;
          ++self->arrived;
          if (self->result->leg1_s == 0.0 &&
              self->leg1_next == self->chunks.size()) {
            self->result->leg1_s =
                fabric_->simulator()->now() - self->result->start_time;
            obs::emit_span("transfer.detour_leg1", obs::Clock::kSim,
                           self->result->start_time,
                           fabric_->simulator()->now());
          }
          self->pump_leg1();
          self->pump_leg2();
        },
        flow_options);
    if (!flow.ok()) {
      fail(self, "pipelined leg 1 rejected: " + flow.error().message);
    }
  };

  // Relay daemon handshake on both legs, then start pumping.
  fabric_->simulator()->schedule_in(
      2.0 * job->rtt1 +
          api_->server()->profile().session_init_rtts * job->rtt2,
      [job] { job->pump_leg1(); });
}

}  // namespace droute::transfer
