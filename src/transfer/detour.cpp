#include "transfer/detour.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "obs/recorder.h"
#include "util/logging.h"

namespace droute::transfer {

namespace {

const char* mode_name(DetourMode mode) {
  return mode == DetourMode::kStoreAndForward ? "store_and_forward"
                                              : "pipelined";
}

// Whole-detour trace span, emitted once per transfer on any outcome. Leg
// spans are emitted separately as the legs complete.
void emit_detour_span(const DetourResult& result) {
  if (!obs::enabled()) return;
  obs::emit_span("transfer.detour", obs::Clock::kSim, result.start_time,
                 result.end_time,
                 {{"mode", mode_name(result.mode)},
                  {"bytes", std::to_string(result.payload_bytes)},
                  {"ok", result.success ? "1" : "0"}});
}

/// Folds a leg task's join result back into the leg's own result struct:
/// a leg that unwound exceptionally (or was cancelled) reads as a failed
/// leg with the Task error as its message.
template <typename Leg>
Leg unwrap_leg(const util::Result<Leg>& joined, double now) {
  if (joined.ok()) return joined.value();
  Leg failed{};
  failed.success = false;
  failed.error = joined.error().message;
  failed.start_time = now;
  failed.end_time = now;
  return failed;
}

}  // namespace

sim::Task<DetourResult> DetourEngine::transfer_task(net::NodeId client,
                                                    net::NodeId intermediate,
                                                    FileSpec file,
                                                    DetourOptions options) {
  return options.mode == DetourMode::kStoreAndForward
             ? store_and_forward_task(client, intermediate, std::move(file),
                                      options)
             : pipelined_task(client, intermediate, std::move(file), options);
}

void DetourEngine::transfer(net::NodeId client, net::NodeId intermediate,
                            const FileSpec& file, Callback done,
                            DetourOptions options) {
  // Folded task_shim: the Task error channel (escaped exception,
  // cancellation) maps back onto {success, error}; `done` fires exactly once.
  sim::Simulator* simulator = fabric_->simulator();
  auto task = transfer_task(client, intermediate, file, options);
  task.on_done([done = std::move(done),
                simulator](const util::Result<DetourResult>& result) {
    if (result.ok()) {
      done(result.value());
      return;
    }
    DetourResult failed{};
    failed.success = false;
    failed.error = result.error().message;
    failed.start_time = failed.end_time = simulator->now();
    done(failed);
  });
}

sim::Task<DetourResult> DetourEngine::store_and_forward_task(
    net::NodeId client, net::NodeId intermediate, FileSpec file,
    DetourOptions options) {
  sim::Simulator& simulator = *fabric_->simulator();
  DetourResult result;
  result.mode = DetourMode::kStoreAndForward;
  result.start_time = simulator.now();
  result.payload_bytes = file.bytes;

  auto leg1_task = rsync_.push_task(client, intermediate, file, options.rsync);
  const auto leg1_joined = co_await leg1_task;
  const RsyncResult leg1 = unwrap_leg(leg1_joined, simulator.now());
  result.leg1_s = leg1.duration_s();
  const double leg1_end = simulator.now();
  obs::emit_span("transfer.detour_leg1", obs::Clock::kSim, result.start_time,
                 leg1_end);
  if (!leg1.success) {
    result.error = "detour leg 1 (rsync): " + leg1.error;
    result.end_time = leg1_end;
    emit_detour_span(result);
    co_return result;
  }

  auto leg2_task = api_->upload_task(intermediate, file, options.api);
  const auto leg2_joined = co_await leg2_task;
  const UploadResult leg2 = unwrap_leg(leg2_joined, simulator.now());
  result.leg2_s = leg2.duration_s();
  result.success = leg2.success;
  if (!leg2.success) {
    result.error = "detour leg 2 (API): " + leg2.error;
  }
  result.end_time = simulator.now();
  obs::emit_span("transfer.detour_leg2", obs::Clock::kSim, leg1_end,
                 result.end_time);
  emit_detour_span(result);
  co_return result;
}

// ---------------------------------------------------------------------------
// Pipelined relay: API-sized chunks stream through the DTN. Chunk i+1 crosses
// the first leg while chunk i crosses the second. Two sibling coroutines
// share state that lives in the parent coroutine's frame — no shared_ptr
// job object, no pump closures (the PipelineJob style this file used to
// have leaked once already; see CHANGES.md PR 1).

namespace {

/// Shared relay state, owned by the parent pipelined_task frame. The legs
/// hold it by reference; the parent joins both legs before returning, so
/// the references never dangle.
struct PipelineShared {
  net::Fabric* fabric = nullptr;
  ApiUploadEngine* api = nullptr;
  TransferEngine* xfer = nullptr;      // the relay hops' batch layer
  SegmentId dtn_segment = kInvalidSegment;
  SegmentId server_segment = kInvalidSegment;
  const FileSpec* file = nullptr;
  const std::vector<std::uint64_t>* chunks = nullptr;
  net::NodeId client = net::kInvalidNode;
  net::NodeId intermediate = net::kInvalidNode;
  double rtt2 = 0.0;            // intermediate <-> provider
  DetourResult* result = nullptr;
  std::size_t arrived = 0;      // chunks fully received at the DTN
  bool failed = false;
  std::string error;
  sim::Notify chunk_ready;      // leg 1 arrival -> leg 2 wake-up
  cloud::SessionId session = 0;
  cloud::ChunkDigester digester;
  // First failure wins and cancels both legs so the parent can report
  // promptly (self-cancellation of the failing leg is a harmless flag).
  sim::Task<bool>* leg1 = nullptr;
  sim::Task<bool>* leg2 = nullptr;

  void note_failure(std::string message) {
    if (failed) return;
    failed = true;
    error = std::move(message);
    if (leg1 != nullptr) leg1->cancel();
    if (leg2 != nullptr) leg2->cancel();
  }
};

/// Leg 1: relays chunks client -> DTN back-to-back. PipelineShared lives
/// in the parent coroutine's frame, which co_awaits both legs before
/// returning, so the reference outlives every suspension here.
sim::Task<bool> pipeline_leg1(PipelineShared& sh) {  // NOLINT(cppcoreguidelines-avoid-reference-coroutine-parameters)
  for (std::size_t next = 0; next < sh.chunks->size(); ++next) {
    if (sh.failed) co_return false;
    TransferRequest hop_request;
    hop_request.opcode = Opcode::kWrite;
    hop_request.source_node = sh.client;
    hop_request.target_id = sh.dtn_segment;
    hop_request.length = (*sh.chunks)[next];
    hop_request.charge_slow_start = next == 0;
    hop_request.label = "relay-leg1";
    auto hop = sh.xfer->submit(std::move(hop_request));
    if (!co_await hop) {
      const RequestStatus& st = hop.status(0);
      if (st.rejected()) {
        sh.note_failure("pipelined leg 1 rejected: " + st.error);
      } else {
        sh.note_failure("pipelined leg 1 flow failed");
      }
      co_return false;
    }
    ++sh.arrived;
    sh.chunk_ready.notify_all();
  }
  sh.result->leg1_s =
      sh.fabric->simulator()->now() - sh.result->start_time;
  obs::emit_span("transfer.detour_leg1", obs::Clock::kSim,
                 sh.result->start_time, sh.fabric->simulator()->now());
  co_return true;
}

/// Leg 2: drains arrived chunks DTN -> provider sequentially, finalizes.
/// Same lifetime argument as leg 1: the parent frame owns `sh` and joins.
sim::Task<bool> pipeline_leg2(PipelineShared& sh) {  // NOLINT(cppcoreguidelines-avoid-reference-coroutine-parameters)
  sim::Simulator& simulator = *sh.fabric->simulator();
  const cloud::ApiProfile& profile = sh.api->server()->profile();
  std::uint64_t offset = 0;
  for (std::size_t next = 0; next < sh.chunks->size();) {
    if (sh.failed) co_return false;
    if (next >= sh.arrived) {
      auto wake = sh.chunk_ready.wait();  // wait for leg 1
      if (!co_await wake) co_return false;
      continue;  // re-check: a notify is a hint
    }
    const std::uint64_t chunk = (*sh.chunks)[next];
    const std::uint64_t wire = chunk + profile.per_chunk_header_bytes;
    TransferRequest hop_request;
    hop_request.opcode = Opcode::kWrite;
    hop_request.source_node = sh.intermediate;
    hop_request.target_id = sh.server_segment;
    hop_request.target_offset = offset;
    hop_request.length = wire;
    hop_request.charge_slow_start = next == 0;
    hop_request.label = "relay-leg2";
    auto hop = sh.xfer->submit(std::move(hop_request));
    if (!co_await hop) {
      const RequestStatus& st = hop.status(0);
      if (st.rejected()) {
        sh.note_failure("pipelined leg 2 rejected: " + st.error);
      } else {
        sh.note_failure("pipelined leg 2 flow failed");
      }
      co_return false;
    }
    const auto digest = sh.file->chunk_digest(offset, chunk);
    const auto append =
        sh.api->server()->append_chunk(sh.session, offset, chunk, digest);
    if (!append.ok()) {
      sh.note_failure("pipelined append: " + append.error().message);
      co_return false;
    }
    sh.digester.add_chunk(digest);
    offset += chunk;
    ++next;
    auto turnaround =
        sim::delay(simulator, profile.per_chunk_rtts * sh.rtt2);
    if (!co_await turnaround) co_return false;
  }
  if (sh.failed) co_return false;

  // Everything uploaded: finalize.
  auto commit = sim::delay(simulator, profile.finalize_rtts * sh.rtt2);
  if (!co_await commit) co_return false;
  auto object = sh.api->server()->finalize(sh.session, sh.digester.finish());
  sh.session = 0;  // finalize consumed it either way
  if (!object.ok()) {
    sh.note_failure("pipelined finalize: " + object.error().message);
    co_return false;
  }
  co_return true;
}

}  // namespace

sim::Task<DetourResult> DetourEngine::pipelined_task(net::NodeId client,
                                                     net::NodeId intermediate,
                                                     FileSpec file,
                                                     DetourOptions options) {
  // Pipelined relay authenticates once up front; per-chunk OAuth costs are
  // identical to the direct path and folded into the session handshake.
  (void)options;
  sim::Simulator& simulator = *fabric_->simulator();
  DetourResult result;
  result.mode = DetourMode::kPipelined;
  result.start_time = simulator.now();
  result.payload_bytes = file.bytes;

  PipelineShared sh;
  sh.fabric = fabric_;
  sh.api = api_;
  sh.xfer = &xfer_;
  sh.dtn_segment = xfer_.ensure_node_segment(intermediate);
  sh.server_segment = xfer_.ensure_node_segment(api_->server_node());
  sh.file = &file;
  sh.client = client;
  sh.intermediate = intermediate;
  sh.result = &result;

  auto fail = [&](std::string error) -> DetourResult {
    if (sh.session != 0) {
      api_->server()->abandon(sh.session);
      sh.session = 0;
    }
    result.error = std::move(error);
    result.end_time = simulator.now();
    emit_detour_span(result);
    return result;
  };

  auto rtt1 = fabric_->rtt_s(client, intermediate);
  auto rtt2 = fabric_->rtt_s(intermediate, api_->server_node());
  if (!rtt1.ok() || !rtt2.ok()) {
    co_return fail("pipelined detour: unroutable leg");
  }
  sh.rtt2 = rtt2.value();

  auto chunk_plan = cloud::chunk_sizes(api_->server()->profile(), file.bytes);
  if (!chunk_plan.ok()) {
    co_return fail(chunk_plan.error().message);
  }
  const std::vector<std::uint64_t> chunks = std::move(chunk_plan).value();
  sh.chunks = &chunks;

  auto session_open =
      api_->server()->create_session(file.name, file.bytes, file.seed);
  if (!session_open.ok()) {
    co_return fail(session_open.error().message);
  }
  sh.session = session_open.value();

  // Relay daemon handshake on both legs, then start pumping.
  auto handshake = sim::delay(
      simulator, 2.0 * rtt1.value() +
                     api_->server()->profile().session_init_rtts * sh.rtt2);
  if (!co_await handshake) {
    co_return fail("pipelined detour cancelled during handshake");
  }

  auto leg1 = pipeline_leg1(sh);
  auto leg2 = pipeline_leg2(sh);
  sh.leg1 = &leg1;
  sh.leg2 = &leg2;
  const auto leg1_ok = co_await leg1;
  const auto leg2_ok = co_await leg2;
  sh.leg1 = nullptr;
  sh.leg2 = nullptr;

  if (sh.failed || !leg1_ok.ok() || !leg1_ok.value() || !leg2_ok.ok() ||
      !leg2_ok.value()) {
    co_return fail(sh.failed ? sh.error : "pipelined detour leg cancelled");
  }
  result.success = true;
  result.end_time = simulator.now();
  emit_detour_span(result);
  co_return result;
}

}  // namespace droute::transfer
