#include "transfer/detour.h"

#include <memory>
#include <vector>

#include "util/logging.h"

namespace droute::transfer {

void DetourEngine::transfer(net::NodeId client, net::NodeId intermediate,
                            const FileSpec& file, Callback done,
                            DetourOptions options) {
  if (options.mode == DetourMode::kStoreAndForward) {
    store_and_forward(client, intermediate, file, std::move(done), options);
  } else {
    pipelined(client, intermediate, file, std::move(done), options);
  }
}

void DetourEngine::store_and_forward(net::NodeId client,
                                     net::NodeId intermediate,
                                     const FileSpec& file, Callback done,
                                     DetourOptions options) {
  auto result = std::make_shared<DetourResult>();
  result->mode = DetourMode::kStoreAndForward;
  result->start_time = fabric_->simulator()->now();
  result->payload_bytes = file.bytes;

  rsync_.push(
      client, intermediate, file,
      [this, intermediate, file, done, result,
       options](const RsyncResult& leg1) {
        result->leg1_s = leg1.duration_s();
        if (!leg1.success) {
          result->error = "detour leg 1 (rsync): " + leg1.error;
          result->end_time = fabric_->simulator()->now();
          done(*result);
          return;
        }
        api_->upload(
            intermediate, file,
            [this, done, result](const UploadResult& leg2) {
              result->leg2_s = leg2.duration_s();
              result->success = leg2.success;
              if (!leg2.success) {
                result->error = "detour leg 2 (API): " + leg2.error;
              }
              result->end_time = fabric_->simulator()->now();
              done(*result);
            },
            options.api);
      },
      options.rsync);
}

// ---------------------------------------------------------------------------
// Pipelined relay: API-sized chunks stream through the DTN. Chunk i+1 crosses
// the first leg while chunk i crosses the second.

namespace {
struct PipelineJob {
  net::NodeId client;
  net::NodeId intermediate;
  FileSpec file;
  DetourEngine::Callback done;
  std::shared_ptr<DetourResult> result;
  std::vector<std::uint64_t> chunks;
  double rtt1 = 0.0;   // client <-> intermediate
  double rtt2 = 0.0;   // intermediate <-> provider
  std::size_t leg1_next = 0;    // next chunk to send on leg 1
  std::size_t leg2_next = 0;    // next chunk to upload on leg 2
  std::size_t arrived = 0;      // chunks fully received at the DTN
  bool leg2_busy = false;
  bool failed = false;
  std::uint64_t leg1_offset = 0;
  std::uint64_t leg2_offset = 0;
  cloud::SessionId session = 0;
  cloud::ChunkDigester digester;
};
}  // namespace

void DetourEngine::pipelined(net::NodeId client, net::NodeId intermediate,
                             const FileSpec& file, Callback done,
                             DetourOptions options) {
  // Pipelined relay authenticates once up front; per-chunk OAuth costs are
  // identical to the direct path and folded into the session handshake.
  (void)options;
  auto job = std::make_shared<PipelineJob>();
  job->client = client;
  job->intermediate = intermediate;
  job->file = file;
  job->done = std::move(done);
  job->result = std::make_shared<DetourResult>();
  job->result->mode = DetourMode::kPipelined;
  job->result->start_time = fabric_->simulator()->now();
  job->result->payload_bytes = file.bytes;

  auto fail = [this, job](const std::string& error) {
    if (job->failed) return;
    job->failed = true;
    if (job->session != 0) api_->server()->abandon(job->session);
    job->result->error = error;
    job->result->end_time = fabric_->simulator()->now();
    job->done(*job->result);
  };

  auto rtt1 = fabric_->rtt_s(client, intermediate);
  auto rtt2 = fabric_->rtt_s(intermediate, api_->server_node());
  if (!rtt1.ok() || !rtt2.ok()) {
    fail("pipelined detour: unroutable leg");
    return;
  }
  job->rtt1 = rtt1.value();
  job->rtt2 = rtt2.value();

  auto chunks = cloud::chunk_sizes(api_->server()->profile(), file.bytes);
  if (!chunks.ok()) {
    fail(chunks.error().message);
    return;
  }
  job->chunks = std::move(chunks).value();

  auto session = api_->server()->create_session(file.name, file.bytes, file.seed);
  if (!session.ok()) {
    fail(session.error().message);
    return;
  }
  job->session = session.value();

  // Leg-2 uploader: drains arrived chunks sequentially.
  auto pump_leg2 = std::make_shared<std::function<void()>>();
  // Leg-1 sender: relays chunks to the DTN back-to-back.
  auto pump_leg1 = std::make_shared<std::function<void()>>();

  *pump_leg2 = [this, job, fail, pump_leg2]() {
    if (job->failed || job->leg2_busy) return;
    if (job->leg2_next == job->chunks.size()) {
      // Everything uploaded: finalize.
      job->leg2_busy = true;
      fabric_->simulator()->schedule_in(
          api_->server()->profile().finalize_rtts * job->rtt2,
          [this, job, fail] {
            auto object =
                api_->server()->finalize(job->session, job->digester.finish());
            if (!object.ok()) {
              job->session = 0;
              fail("pipelined finalize: " + object.error().message);
              return;
            }
            job->result->success = true;
            job->result->end_time = fabric_->simulator()->now();
            job->done(*job->result);
          });
      return;
    }
    if (job->leg2_next >= job->arrived) return;  // wait for leg 1
    job->leg2_busy = true;
    const std::uint64_t chunk = job->chunks[job->leg2_next];
    net::FlowOptions flow_options;
    flow_options.charge_slow_start = job->leg2_next == 0;
    flow_options.label = "relay-leg2";
    const std::uint64_t wire =
        chunk + api_->server()->profile().per_chunk_header_bytes;
    auto flow = fabric_->start_flow(
        job->intermediate, api_->server_node(), wire,
        [this, job, fail, pump_leg2](const net::FlowStats& stats) {
          if (stats.outcome != net::FlowOutcome::kCompleted) {
            fail("pipelined leg 2 flow failed");
            return;
          }
          const std::uint64_t chunk = job->chunks[job->leg2_next];
          const auto digest = job->file.chunk_digest(job->leg2_offset, chunk);
          const auto status = api_->server()->append_chunk(
              job->session, job->leg2_offset, chunk, digest);
          if (!status.ok()) {
            fail("pipelined append: " + status.error().message);
            return;
          }
          job->digester.add_chunk(digest);
          job->leg2_offset += chunk;
          ++job->leg2_next;
          fabric_->simulator()->schedule_in(
              api_->server()->profile().per_chunk_rtts * job->rtt2,
              [job, pump_leg2] {
                job->leg2_busy = false;
                (*pump_leg2)();
              });
        },
        flow_options);
    if (!flow.ok()) fail("pipelined leg 2 rejected: " + flow.error().message);
  };

  *pump_leg1 = [this, job, fail, pump_leg1, pump_leg2]() {
    if (job->failed || job->leg1_next == job->chunks.size()) return;
    const std::uint64_t chunk = job->chunks[job->leg1_next];
    net::FlowOptions flow_options;
    flow_options.charge_slow_start = job->leg1_next == 0;
    flow_options.label = "relay-leg1";
    auto flow = fabric_->start_flow(
        job->client, job->intermediate, chunk,
        [this, job, fail, pump_leg1, pump_leg2](const net::FlowStats& stats) {
          if (stats.outcome != net::FlowOutcome::kCompleted) {
            fail("pipelined leg 1 flow failed");
            return;
          }
          job->leg1_offset += job->chunks[job->leg1_next];
          ++job->leg1_next;
          ++job->arrived;
          if (job->result->leg1_s == 0.0 &&
              job->leg1_next == job->chunks.size()) {
            job->result->leg1_s =
                fabric_->simulator()->now() - job->result->start_time;
          }
          (*pump_leg1)();
          (*pump_leg2)();
        },
        flow_options);
    if (!flow.ok()) fail("pipelined leg 1 rejected: " + flow.error().message);
  };

  // Relay daemon handshake on both legs, then start pumping.
  fabric_->simulator()->schedule_in(
      2.0 * job->rtt1 +
          api_->server()->profile().session_init_rtts * job->rtt2,
      [pump_leg1] { (*pump_leg1)(); });
}

}  // namespace droute::transfer
