#include "transfer/api_upload.h"

#include <memory>
#include <utility>
#include <vector>

#include "check/contract.h"
#include "obs/recorder.h"
#include "util/logging.h"

namespace droute::transfer {

struct ApiUploadEngine::Job {
  net::NodeId client = net::kInvalidNode;
  FileSpec file;
  Callback done;
  UploadResult result;
  std::vector<std::uint64_t> chunks;
  std::size_t next_chunk = 0;
  std::uint64_t offset = 0;
  int attempts_this_chunk = 0;
  cloud::SessionId session = 0;
  cloud::ChunkDigester digester;
  double chunk_start = 0.0;  // sim time the in-flight chunk PUT started
};

namespace {
// Whole-upload trace span, emitted once per job on any outcome.
void emit_upload_span(const UploadResult& result) {
  if (!obs::enabled()) return;
  obs::emit_span("transfer.api_upload", obs::Clock::kSim, result.start_time,
                 result.end_time,
                 {{"bytes", std::to_string(result.payload_bytes)},
                  {"chunks", std::to_string(result.chunks)},
                  {"retries", std::to_string(result.throttle_retries)},
                  {"ok", result.success ? "1" : "0"}});
}
}  // namespace

// After this many consecutive 429s on one chunk the upload gives up (real
// clients surface the error to the user at a similar depth).
constexpr int kMaxThrottleRetries = 8;

ApiUploadEngine::ApiUploadEngine(net::Fabric* fabric,
                                 cloud::StorageServer* server,
                                 net::NodeId server_node)
    : fabric_(fabric), server_(server), server_node_(server_node) {
  DROUTE_CHECK(fabric_ && server_, "ApiUploadEngine: null dependency");
  obs_throttle_retries_ = obs::counter("transfer.throttle_retries_total");
  obs_backoff_wait_ =
      obs::histogram("transfer.backoff_wait_s", obs::duration_bounds_s());
}

void ApiUploadEngine::fail(std::shared_ptr<Job> job, std::string error) {
  if (job->session != 0) server_->abandon(job->session);
  job->result.success = false;
  job->result.error = std::move(error);
  job->result.end_time = fabric_->simulator()->now();
  emit_upload_span(job->result);
  job->done(job->result);
}

void ApiUploadEngine::upload(net::NodeId client, const FileSpec& file,
                             Callback done, ApiUploadOptions options) {
  auto job = std::make_shared<Job>();
  job->client = client;
  job->file = file;
  job->done = std::move(done);
  job->result.start_time = fabric_->simulator()->now();
  job->result.payload_bytes = file.bytes;

  auto rtt = fabric_->rtt_s(client, server_node_);
  if (!rtt.ok()) {
    fail(job, "no route to provider: " + rtt.error().message);
    return;
  }
  job->result.rtt_s = rtt.value();

  auto chunks = cloud::chunk_sizes(server_->profile(), file.bytes);
  if (!chunks.ok()) {
    fail(job, chunks.error().message);
    return;
  }
  job->chunks = std::move(chunks).value();

  // OAuth: an expired token costs one token-endpoint round trip up front.
  double preamble_rtts = server_->profile().session_init_rtts;
  if (options.oauth != nullptr) {
    bool refreshed = false;
    options.oauth->ensure_token(fabric_->simulator()->now(), &refreshed);
    job->result.token_refreshed = refreshed;
    if (refreshed) preamble_rtts += 1.0;
  }

  auto session = server_->create_session(file.name, file.bytes, file.seed);
  if (!session.ok()) {
    fail(job, session.error().message);
    return;
  }
  job->session = session.value();

  fabric_->simulator()->schedule_in(
      preamble_rtts * job->result.rtt_s,
      [this, job] { send_next_chunk(job); });
}

void ApiUploadEngine::send_next_chunk(std::shared_ptr<Job> job) {
  const cloud::ApiProfile& profile = server_->profile();
  if (job->next_chunk == job->chunks.size()) {
    // All chunks acked: finalize (commit) round trip, then report.
    fabric_->simulator()->schedule_in(
        profile.finalize_rtts * job->result.rtt_s, [this, job] {
          auto object = server_->finalize(job->session,
                                          job->digester.finish());
          if (!object.ok()) {
            job->session = 0;  // finalize consumed it
            fail(job, object.error().message);
            return;
          }
          job->result.success = true;
          job->result.end_time = fabric_->simulator()->now();
          emit_upload_span(job->result);
          job->done(job->result);
        });
    return;
  }

  job->chunk_start = fabric_->simulator()->now();
  const std::uint64_t chunk_bytes = job->chunks[job->next_chunk];
  const std::uint64_t wire = chunk_bytes + profile.per_chunk_header_bytes;
  net::FlowOptions flow_options;
  // The HTTP connection persists across chunks; only the first chunk pays
  // the slow-start ramp.
  flow_options.charge_slow_start = job->next_chunk == 0;
  flow_options.label = "api-chunk";

  auto flow = fabric_->start_flow(
      job->client, server_node_, wire,
      [this, job](const net::FlowStats& stats) {
        if (stats.outcome != net::FlowOutcome::kCompleted) {
          fail(job, stats.outcome == net::FlowOutcome::kLinkFailed
                        ? "link failed mid-chunk"
                        : "chunk flow aborted");
          return;
        }
        const std::uint64_t done_bytes = job->chunks[job->next_chunk];
        const auto digest = job->file.chunk_digest(job->offset, done_bytes);
        const auto status = server_->append_chunk(job->session, job->offset,
                                                  done_bytes, digest);
        if (!status.ok()) {
          if (status.error().code == 429 &&
              job->attempts_this_chunk < kMaxThrottleRetries) {
            // Honour Retry-After with exponential backoff, then resend the
            // same chunk (its bytes are wasted — the real cost of being
            // throttled mid-upload).
            const double backoff =
                server_->profile().retry_after_s *
                static_cast<double>(1 << job->attempts_this_chunk);
            ++job->attempts_this_chunk;
            ++job->result.throttle_retries;
            obs::add(obs_throttle_retries_);
            obs::observe(obs_backoff_wait_, backoff);
            if (obs::enabled()) {
              obs::emit_span("transfer.chunk_put", obs::Clock::kSim,
                             job->chunk_start, fabric_->simulator()->now(),
                             {{"offset", std::to_string(job->offset)},
                              {"status", "429"}});
            }
            fabric_->simulator()->schedule_in(
                backoff, [this, job] { send_next_chunk(job); });
            return;
          }
          fail(job, "append rejected: " + status.error().message);
          return;
        }
        if (obs::enabled()) {
          obs::emit_span("transfer.chunk_put", obs::Clock::kSim,
                         job->chunk_start, fabric_->simulator()->now(),
                         {{"offset", std::to_string(job->offset)},
                          {"status", "ok"}});
        }
        job->attempts_this_chunk = 0;
        job->digester.add_chunk(digest);
        job->result.wire_bytes += stats.bytes;
        job->offset += done_bytes;
        ++job->next_chunk;
        ++job->result.chunks;
        // Chunk ack turnaround before the next request is issued.
        fabric_->simulator()->schedule_in(
            server_->profile().per_chunk_rtts * job->result.rtt_s,
            [this, job] { send_next_chunk(job); });
      },
      flow_options);
  if (!flow.ok()) {
    fail(job, "chunk flow rejected: " + flow.error().message);
  }
}

}  // namespace droute::transfer
