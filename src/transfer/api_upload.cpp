#include "transfer/api_upload.h"

#include <utility>
#include <vector>

#include "check/contract.h"
#include "obs/recorder.h"
#include "util/logging.h"

namespace droute::transfer {

namespace {
// Whole-upload trace span, emitted once per upload on any outcome.
void emit_upload_span(const UploadResult& result) {
  if (!obs::enabled()) return;
  obs::emit_span("transfer.api_upload", obs::Clock::kSim, result.start_time,
                 result.end_time,
                 {{"bytes", std::to_string(result.payload_bytes)},
                  {"chunks", std::to_string(result.chunks)},
                  {"retries", std::to_string(result.throttle_retries)},
                  {"ok", result.success ? "1" : "0"}});
}
}  // namespace

// After this many consecutive 429s on one chunk the upload gives up (real
// clients surface the error to the user at a similar depth).
constexpr int kMaxThrottleRetries = 8;

ApiUploadEngine::ApiUploadEngine(net::Fabric* fabric,
                                 cloud::StorageServer* server,
                                 net::NodeId server_node)
    : fabric_(fabric), server_(server), server_node_(server_node),
      transport_(fabric), xfer_(&transport_) {
  DROUTE_CHECK(fabric_ && server_, "ApiUploadEngine: null dependency");
  server_segment_ = xfer_.ensure_node_segment(server_node_);
  obs_throttle_retries_ = obs::counter("transfer.throttle_retries_total");
  obs_backoff_wait_ =
      obs::histogram("transfer.backoff_wait_s", obs::duration_bounds_s());
}

sim::Task<UploadResult> ApiUploadEngine::upload_task(net::NodeId client,
                                                     FileSpec file,
                                                     ApiUploadOptions options) {
  sim::Simulator& simulator = *fabric_->simulator();
  UploadResult result;
  result.start_time = simulator.now();
  result.payload_bytes = file.bytes;
  cloud::SessionId session = 0;

  // Single failure funnel: abandon the open session, stamp the result,
  // emit the whole-upload span (any outcome), hand back the struct.
  auto fail = [&](std::string error) -> UploadResult {
    if (session != 0) {
      server_->abandon(session);
      session = 0;
    }
    result.success = false;
    result.error = std::move(error);
    result.end_time = simulator.now();
    emit_upload_span(result);
    return result;
  };

  auto rtt = fabric_->rtt_s(client, server_node_);
  if (!rtt.ok()) {
    co_return fail("no route to provider: " + rtt.error().message);
  }
  result.rtt_s = rtt.value();

  auto chunk_plan = cloud::chunk_sizes(server_->profile(), file.bytes);
  if (!chunk_plan.ok()) {
    co_return fail(chunk_plan.error().message);
  }
  const std::vector<std::uint64_t> chunks = std::move(chunk_plan).value();

  // OAuth: an expired token costs one token-endpoint round trip up front,
  // folded into the session-init preamble wait below (one sim event).
  double preamble_rtts = server_->profile().session_init_rtts;
  if (options.oauth != nullptr) {
    bool refreshed = false;
    options.oauth->ensure_token(simulator.now(), &refreshed);
    result.token_refreshed = refreshed;
    if (refreshed) preamble_rtts += 1.0;
  }

  auto session_open = server_->create_session(file.name, file.bytes, file.seed);
  if (!session_open.ok()) {
    co_return fail(session_open.error().message);
  }
  session = session_open.value();

  auto preamble = sim::delay(simulator, preamble_rtts * result.rtt_s);
  if (!co_await preamble) {
    co_return fail("upload cancelled during session preamble");
  }

  cloud::ChunkDigester digester;
  std::uint64_t offset = 0;
  int attempts_this_chunk = 0;
  for (std::size_t next_chunk = 0; next_chunk < chunks.size();) {
    const double chunk_start = simulator.now();
    const std::uint64_t chunk_bytes = chunks[next_chunk];
    const std::uint64_t wire =
        chunk_bytes + server_->profile().per_chunk_header_bytes;
    TransferRequest put_request;
    put_request.opcode = Opcode::kWrite;
    put_request.source_node = client;
    put_request.target_id = server_segment_;
    put_request.target_offset = offset;
    put_request.length = wire;
    // The HTTP connection persists across chunks; only the first chunk pays
    // the slow-start ramp.
    put_request.charge_slow_start = next_chunk == 0;
    put_request.label = "api-chunk";

    auto put = xfer_.submit(std::move(put_request));
    if (!co_await put) {
      const RequestStatus& st = put.status(0);
      if (st.rejected()) {
        co_return fail("chunk flow rejected: " + st.error);
      }
      co_return fail(st.state == RequestState::kLinkFailed
                         ? "link failed mid-chunk"
                         : "chunk flow aborted");
    }

    const auto digest = file.chunk_digest(offset, chunk_bytes);
    const auto append =
        server_->append_chunk(session, offset, chunk_bytes, digest);
    if (!append.ok()) {
      if (append.error().code == 429 &&
          attempts_this_chunk < kMaxThrottleRetries) {
        // Honour Retry-After with exponential backoff, then resend the
        // same chunk (its bytes are wasted — the real cost of being
        // throttled mid-upload).
        const double backoff =
            server_->profile().retry_after_s *
            static_cast<double>(1 << attempts_this_chunk);
        ++attempts_this_chunk;
        ++result.throttle_retries;
        obs::add(obs_throttle_retries_);
        obs::observe(obs_backoff_wait_, backoff);
        if (obs::enabled()) {
          obs::emit_span("transfer.chunk_put", obs::Clock::kSim, chunk_start,
                         simulator.now(),
                         {{"offset", std::to_string(offset)},
                          {"status", "429"}});
        }
        auto wait = sim::delay(simulator, backoff);
        if (!co_await wait) {
          co_return fail("upload cancelled during throttle backoff");
        }
        continue;
      }
      co_return fail("append rejected: " + append.error().message);
    }
    if (obs::enabled()) {
      obs::emit_span("transfer.chunk_put", obs::Clock::kSim, chunk_start,
                     simulator.now(),
                     {{"offset", std::to_string(offset)}, {"status", "ok"}});
    }
    attempts_this_chunk = 0;
    digester.add_chunk(digest);
    result.wire_bytes += put.status(0).bytes;
    offset += chunk_bytes;
    ++next_chunk;
    ++result.chunks;
    // Chunk ack turnaround before the next request is issued.
    auto turnaround =
        sim::delay(simulator, server_->profile().per_chunk_rtts * result.rtt_s);
    if (!co_await turnaround) {
      co_return fail("upload cancelled between chunks");
    }
  }

  // All chunks acked: finalize (commit) round trip, then report.
  auto commit =
      sim::delay(simulator, server_->profile().finalize_rtts * result.rtt_s);
  if (!co_await commit) {
    co_return fail("upload cancelled during finalize");
  }
  auto object = server_->finalize(session, digester.finish());
  if (!object.ok()) {
    session = 0;  // finalize consumed it
    co_return fail(object.error().message);
  }
  session = 0;
  result.success = true;
  result.end_time = simulator.now();
  emit_upload_span(result);
  co_return result;
}

void ApiUploadEngine::upload(net::NodeId client, const FileSpec& file,
                             Callback done, ApiUploadOptions options) {
  // Fold of the old task_shim: domain failures already live inside the
  // result struct; the Task error channel (escaped exception, cancellation)
  // is folded back into {success, error} so `done` fires exactly once.
  sim::Simulator* simulator = fabric_->simulator();
  auto task = upload_task(client, file, options);
  task.on_done([done = std::move(done),
                simulator](const util::Result<UploadResult>& result) {
    if (result.ok()) {
      done(result.value());
      return;
    }
    UploadResult failed{};
    failed.success = false;
    failed.error = result.error().message;
    failed.start_time = failed.end_time = simulator->now();
    done(failed);
  });
}

}  // namespace droute::transfer
