// rsync transfer engine: the client -> intermediate-DTN leg of a detour.
//
// Models the full rsync session shape over the fabric:
//   handshake (2 RTT) -> receiver signature (reverse flow) -> sender delta
//   (forward flow) -> trailer (1 RTT) + receiver patch CPU.
// In the paper's benchmark configuration the DTN holds no basis file
// (files are deleted before each run, Sec II), so the delta is one full-file
// literal — asserted by tests, and exactly why the detour pays the full
// payload cost on both legs.
#pragma once

#include <functional>
#include <optional>
#include <string>

#include "net/fabric.h"
#include "rsyncx/session.h"
#include "sim/task.h"
#include "transfer/batch.h"
#include "transfer/file_spec.h"
#include "transfer/sim_transport.h"

namespace droute::transfer {

struct RsyncResult {
  bool success = false;
  std::string error;
  double start_time = 0.0;
  double end_time = 0.0;
  std::uint64_t payload_bytes = 0;
  std::uint64_t forward_wire_bytes = 0;
  std::uint64_t reverse_wire_bytes = 0;
  double cpu_s = 0.0;  // modelled endpoint compute charged to the timeline

  double duration_s() const { return end_time - start_time; }
};

struct RsyncOptions {
  /// Fraction of the file the receiver already holds unchanged (0 = the
  /// paper's deleted-before-run case). Used by the delta ablation; the
  /// engine scales literal bytes accordingly, mirroring what a real basis
  /// with that overlap yields (validated against rsyncx on real blobs).
  double basis_overlap = 0.0;
  rsyncx::CpuModel cpu;
};

class RsyncEngine {
 public:
  using Callback = std::function<void(const RsyncResult&)>;

  explicit RsyncEngine(net::Fabric* fabric)
      : fabric_(fabric), transport_(fabric), xfer_(&transport_) {}

  /// Coroutine form: pushes `file` from `src` to `dst` (rsync "push" mode,
  /// as the paper's user machine pushes to the intermediate node). Domain
  /// failures land inside RsyncResult; the Result error channel carries
  /// only escaped exceptions / cancellation.
  sim::Task<RsyncResult> push_task(net::NodeId src, net::NodeId dst,
                                   FileSpec file, RsyncOptions options = {});

  /// Legacy callback shim over push_task(); `done` fires exactly once.
  void push(net::NodeId src, net::NodeId dst, const FileSpec& file,
            Callback done, RsyncOptions options = {});

  /// The batched submission layer both session legs route through.
  TransferEngine& batch_engine() { return xfer_; }

 private:
  net::Fabric* fabric_;
  SimTransport transport_;
  TransferEngine xfer_;
};

}  // namespace droute::transfer
