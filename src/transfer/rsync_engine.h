// rsync transfer engine: the client -> intermediate-DTN leg of a detour.
//
// Models the full rsync session shape over the fabric:
//   handshake (2 RTT) -> receiver signature (reverse flow) -> sender delta
//   (forward flow) -> trailer (1 RTT) + receiver patch CPU.
// In the paper's benchmark configuration the DTN holds no basis file
// (files are deleted before each run, Sec II), so the delta is one full-file
// literal — asserted by tests, and exactly why the detour pays the full
// payload cost on both legs.
#pragma once

#include <functional>
#include <optional>
#include <string>

#include "net/fabric.h"
#include "rsyncx/session.h"
#include "transfer/file_spec.h"

namespace droute::transfer {

struct RsyncResult {
  bool success = false;
  std::string error;
  double start_time = 0.0;
  double end_time = 0.0;
  std::uint64_t payload_bytes = 0;
  std::uint64_t forward_wire_bytes = 0;
  std::uint64_t reverse_wire_bytes = 0;
  double cpu_s = 0.0;  // modelled endpoint compute charged to the timeline

  double duration_s() const { return end_time - start_time; }
};

struct RsyncOptions {
  /// Fraction of the file the receiver already holds unchanged (0 = the
  /// paper's deleted-before-run case). Used by the delta ablation; the
  /// engine scales literal bytes accordingly, mirroring what a real basis
  /// with that overlap yields (validated against rsyncx on real blobs).
  double basis_overlap = 0.0;
  rsyncx::CpuModel cpu;
};

class RsyncEngine {
 public:
  using Callback = std::function<void(const RsyncResult&)>;

  explicit RsyncEngine(net::Fabric* fabric) : fabric_(fabric) {}

  /// Pushes `file` from `src` to `dst` (rsync "push" mode, as the paper's
  /// user machine pushes to the intermediate node).
  void push(net::NodeId src, net::NodeId dst, const FileSpec& file,
            Callback done, RsyncOptions options = {});

 private:
  net::Fabric* fabric_;
};

}  // namespace droute::transfer
