#include "transfer/sim_transport.h"

#include <utility>

namespace droute::transfer {

util::Result<Transport::OpId> SimTransport::start(const Segment& target,
                                                  const TransferRequest& request,
                                                  CompletionFn done) {
  if (target.node == net::kInvalidNode) {
    return util::Error::make("segment has no fabric node");
  }
  if (request.source_node == net::kInvalidNode) {
    return util::Error::make("request has no source node");
  }
  const net::NodeId src = request.opcode == Opcode::kWrite ? request.source_node
                                                           : target.node;
  const net::NodeId dst = request.opcode == Opcode::kWrite ? target.node
                                                           : request.source_node;
  net::FlowOptions options;
  options.charge_slow_start = request.charge_slow_start;
  options.label = request.label;
  auto flow = fabric_->start_flow(
      src, dst, request.length,
      [done = std::move(done)](const net::FlowStats& stats) {
        Completion completion;
        completion.bytes = stats.bytes;
        switch (stats.outcome) {
          case net::FlowOutcome::kCompleted:
            completion.fate = TransferFate::kCompleted;
            break;
          case net::FlowOutcome::kAborted:
            completion.fate = TransferFate::kAborted;
            break;
          case net::FlowOutcome::kLinkFailed:
            completion.fate = TransferFate::kLinkFailed;
            break;
        }
        done(completion);
      },
      std::move(options));
  if (!flow.ok()) return flow.error();
  // Flow ids start at 1, so they double as OpIds (0 stays "no op").
  return static_cast<OpId>(flow.value());
}

}  // namespace droute::transfer
