#include "transfer/rsync_engine.h"

#include <algorithm>
#include <utility>

#include "check/contract.h"
#include "rsyncx/signature.h"

namespace droute::transfer {

namespace {

/// Wire/CPU accounting for a synthetic session with a given basis overlap,
/// mirroring rsyncx::plan_session without materializing content.
struct SyntheticPlan {
  std::uint64_t forward_bytes;
  std::uint64_t reverse_bytes;
  double sender_cpu_s;
  double receiver_cpu_s;
};

SyntheticPlan synthesize(std::uint64_t file_bytes, double overlap,
                         const rsyncx::CpuModel& cpu) {
  SyntheticPlan plan{};
  const std::uint32_t block =
      rsyncx::recommended_block_size(file_bytes);
  const std::uint64_t basis_bytes =
      overlap > 0.0 ? file_bytes : 0;  // basis exists only with overlap
  const std::uint64_t basis_blocks =
      basis_bytes == 0 ? 0 : (basis_bytes + block - 1) / block;

  const auto literal_bytes = static_cast<std::uint64_t>(
      static_cast<double>(file_bytes) * (1.0 - overlap));
  const std::uint64_t copied_blocks =
      (file_bytes - literal_bytes) / block;

  // Forward: delta header + literal payload + merged copy runs (~1 op each
  // for long runs; charge conservatively one op per 64 copied blocks).
  plan.forward_bytes = rsyncx::kSessionFramingBytes + 24 + 8 + literal_bytes +
                       12 * (copied_blocks / 64 + (copied_blocks ? 1 : 0));
  // Reverse: signature of the basis.
  plan.reverse_bytes =
      rsyncx::kSessionFramingBytes + 16 + basis_blocks * (4 + 16 + 4);

  plan.sender_cpu_s =
      static_cast<double>(file_bytes) / cpu.scan_bytes_per_s;
  plan.receiver_cpu_s =
      static_cast<double>(basis_bytes) / cpu.signature_bytes_per_s +
      static_cast<double>(file_bytes) / cpu.patch_bytes_per_s;
  return plan;
}

RsyncResult fail_result(RsyncResult result, std::string error, double now) {
  result.success = false;
  result.error = std::move(error);
  result.end_time = now;
  return result;
}

}  // namespace

sim::Task<RsyncResult> RsyncEngine::push_task(net::NodeId src, net::NodeId dst,
                                              FileSpec file,
                                              RsyncOptions options) {
  sim::Simulator& simulator = *fabric_->simulator();
  RsyncResult result;
  result.start_time = simulator.now();
  result.payload_bytes = file.bytes;

  auto rtt = fabric_->rtt_s(src, dst);
  if (!rtt.ok()) {
    co_return fail_result(std::move(result),
                          "no route to intermediate node: " +
                              rtt.error().message,
                          simulator.now());
  }
  const double rtt_s = rtt.value();

  DROUTE_CHECK(options.basis_overlap >= 0.0 && options.basis_overlap <= 1.0,
               "basis_overlap must be in [0,1]");
  const SyntheticPlan plan =
      synthesize(file.bytes, options.basis_overlap, options.cpu);
  result.forward_wire_bytes = plan.forward_bytes;
  result.reverse_wire_bytes = plan.reverse_bytes;
  result.cpu_s = plan.sender_cpu_s + plan.receiver_cpu_s;

  // Handshake (greeting + option negotiation), then the receiver computes
  // and ships the signature, then the delta flows forward, then a trailer
  // round trip and the receiver's patch pass.
  const double signature_cpu =
      options.basis_overlap > 0.0
          ? static_cast<double>(file.bytes) / options.cpu.signature_bytes_per_s
          : 0.0;
  const double patch_cpu = plan.receiver_cpu_s - signature_cpu;

  auto handshake = sim::delay(simulator, 2.0 * rtt_s + signature_cpu);
  if (!co_await handshake) {
    co_return fail_result(std::move(result), "rsync cancelled mid-handshake",
                          simulator.now());
  }

  // Both session legs address the receiver's segment: the signature is a
  // READ (receiver -> sender), the delta a WRITE (sender -> receiver).
  const SegmentId receiver = xfer_.ensure_node_segment(dst);

  TransferRequest sig_request;
  sig_request.opcode = Opcode::kRead;
  sig_request.source_node = src;
  sig_request.target_id = receiver;
  sig_request.length = std::max<std::uint64_t>(1, plan.reverse_bytes);
  sig_request.label = "rsync-signature";
  auto sig_leg = xfer_.submit(std::move(sig_request));
  if (!co_await sig_leg) {
    const RequestStatus& st = sig_leg.status(0);
    if (st.rejected()) {
      co_return fail_result(std::move(result),
                            "signature flow rejected: " + st.error,
                            simulator.now());
    }
    co_return fail_result(std::move(result), "signature transfer failed",
                          simulator.now());
  }

  TransferRequest delta_request;
  delta_request.opcode = Opcode::kWrite;
  delta_request.source_node = src;
  delta_request.target_id = receiver;
  delta_request.length = std::max<std::uint64_t>(1, plan.forward_bytes);
  delta_request.label = "rsync-delta";
  auto delta_leg = xfer_.submit(std::move(delta_request));
  if (!co_await delta_leg) {
    const RequestStatus& st = delta_leg.status(0);
    if (st.rejected()) {
      co_return fail_result(std::move(result),
                            "delta flow rejected: " + st.error,
                            simulator.now());
    }
    co_return fail_result(std::move(result), "delta transfer failed",
                          simulator.now());
  }

  auto trailer = sim::delay(simulator, rtt_s + patch_cpu);
  if (!co_await trailer) {
    co_return fail_result(std::move(result), "rsync cancelled mid-trailer",
                          simulator.now());
  }
  result.success = true;
  result.end_time = simulator.now();
  co_return result;
}

void RsyncEngine::push(net::NodeId src, net::NodeId dst, const FileSpec& file,
                       Callback done, RsyncOptions options) {
  // Folded task_shim: the Task error channel (escaped exception,
  // cancellation) maps back onto {success, error}; `done` fires exactly once.
  sim::Simulator* simulator = fabric_->simulator();
  auto task = push_task(src, dst, file, options);
  task.on_done([done = std::move(done),
                simulator](const util::Result<RsyncResult>& result) {
    if (result.ok()) {
      done(result.value());
      return;
    }
    RsyncResult failed{};
    failed.success = false;
    failed.error = result.error().message;
    failed.start_time = failed.end_time = simulator->now();
    done(failed);
  });
}

}  // namespace droute::transfer
