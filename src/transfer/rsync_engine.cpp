#include "transfer/rsync_engine.h"

#include <algorithm>
#include <memory>

#include "check/contract.h"
#include "rsyncx/signature.h"

namespace droute::transfer {

namespace {

/// Wire/CPU accounting for a synthetic session with a given basis overlap,
/// mirroring rsyncx::plan_session without materializing content.
struct SyntheticPlan {
  std::uint64_t forward_bytes;
  std::uint64_t reverse_bytes;
  double sender_cpu_s;
  double receiver_cpu_s;
};

SyntheticPlan synthesize(std::uint64_t file_bytes, double overlap,
                         const rsyncx::CpuModel& cpu) {
  SyntheticPlan plan{};
  const std::uint32_t block =
      rsyncx::recommended_block_size(file_bytes);
  const std::uint64_t basis_bytes =
      overlap > 0.0 ? file_bytes : 0;  // basis exists only with overlap
  const std::uint64_t basis_blocks =
      basis_bytes == 0 ? 0 : (basis_bytes + block - 1) / block;

  const auto literal_bytes = static_cast<std::uint64_t>(
      static_cast<double>(file_bytes) * (1.0 - overlap));
  const std::uint64_t copied_blocks =
      (file_bytes - literal_bytes) / block;

  // Forward: delta header + literal payload + merged copy runs (~1 op each
  // for long runs; charge conservatively one op per 64 copied blocks).
  plan.forward_bytes = rsyncx::kSessionFramingBytes + 24 + 8 + literal_bytes +
                       12 * (copied_blocks / 64 + (copied_blocks ? 1 : 0));
  // Reverse: signature of the basis.
  plan.reverse_bytes =
      rsyncx::kSessionFramingBytes + 16 + basis_blocks * (4 + 16 + 4);

  plan.sender_cpu_s =
      static_cast<double>(file_bytes) / cpu.scan_bytes_per_s;
  plan.receiver_cpu_s =
      static_cast<double>(basis_bytes) / cpu.signature_bytes_per_s +
      static_cast<double>(file_bytes) / cpu.patch_bytes_per_s;
  return plan;
}

}  // namespace

void RsyncEngine::push(net::NodeId src, net::NodeId dst, const FileSpec& file,
                       Callback done, RsyncOptions options) {
  auto result = std::make_shared<RsyncResult>();
  result->start_time = fabric_->simulator()->now();
  result->payload_bytes = file.bytes;

  auto finish_error = [this, result, done](std::string error) {
    result->success = false;
    result->error = std::move(error);
    result->end_time = fabric_->simulator()->now();
    done(*result);
  };

  auto rtt = fabric_->rtt_s(src, dst);
  if (!rtt.ok()) {
    finish_error("no route to intermediate node: " + rtt.error().message);
    return;
  }
  const double rtt_s = rtt.value();

  DROUTE_CHECK(options.basis_overlap >= 0.0 && options.basis_overlap <= 1.0,
               "basis_overlap must be in [0,1]");
  const SyntheticPlan plan =
      synthesize(file.bytes, options.basis_overlap, options.cpu);
  result->forward_wire_bytes = plan.forward_bytes;
  result->reverse_wire_bytes = plan.reverse_bytes;
  result->cpu_s = plan.sender_cpu_s + plan.receiver_cpu_s;

  // Handshake (greeting + option negotiation), then the receiver computes
  // and ships the signature, then the delta flows forward, then a trailer
  // round trip and the receiver's patch pass.
  const double signature_cpu =
      options.basis_overlap > 0.0
          ? static_cast<double>(file.bytes) / options.cpu.signature_bytes_per_s
          : 0.0;
  const double patch_cpu = plan.receiver_cpu_s - signature_cpu;

  fabric_->simulator()->schedule_in(2.0 * rtt_s + signature_cpu, [this, src,
                                                                  dst, plan,
                                                                  result, done,
                                                                  rtt_s,
                                                                  patch_cpu,
                                                                  finish_error] {
    net::FlowOptions sig_options;
    sig_options.label = "rsync-signature";
    auto sig_flow = fabric_->start_flow(
        dst, src, std::max<std::uint64_t>(1, plan.reverse_bytes),
        [this, src, dst, plan, result, done, rtt_s, patch_cpu,
         finish_error](const net::FlowStats& sig_stats) {
          if (sig_stats.outcome != net::FlowOutcome::kCompleted) {
            finish_error("signature transfer failed");
            return;
          }
          net::FlowOptions delta_options;
          delta_options.label = "rsync-delta";
          auto delta_flow = fabric_->start_flow(
              src, dst, std::max<std::uint64_t>(1, plan.forward_bytes),
              [this, result, done, rtt_s, patch_cpu,
               finish_error](const net::FlowStats& delta_stats) {
                if (delta_stats.outcome != net::FlowOutcome::kCompleted) {
                  finish_error("delta transfer failed");
                  return;
                }
                fabric_->simulator()->schedule_in(
                    rtt_s + patch_cpu, [this, result, done] {
                      result->success = true;
                      result->end_time = fabric_->simulator()->now();
                      done(*result);
                    });
              },
              delta_options);
          if (!delta_flow.ok()) {
            finish_error("delta flow rejected: " + delta_flow.error().message);
          }
        },
        sig_options);
    if (!sig_flow.ok()) {
      finish_error("signature flow rejected: " + sig_flow.error().message);
    }
  });
}

}  // namespace droute::transfer
