// Steered upload engine: the data plane's side of the ctrl seam.
//
// Each upload asks a ctrl::Steering source for a path, then executes it
// store-and-forward: one rsync push per relay leg (the paper's detour
// mechanics, generalized to a bounded chain) and the provider-API upload
// from the last node. The session's observed goodput is reported back via
// Steering::observe_session, closing the control loop.
//
// Depends only on the header-only ctrl/steering.h interface — the transfer
// layer does not link droute_ctrl (DESIGN.md §14).
#pragma once

#include <string>

#include "ctrl/steering.h"
#include "net/fabric.h"
#include "sim/task.h"
#include "transfer/api_upload.h"
#include "transfer/rsync_engine.h"

namespace droute::transfer {

struct SteeredResult {
  bool success = false;
  std::string error;
  double start_time = 0.0;
  double end_time = 0.0;
  std::uint64_t payload_bytes = 0;
  ctrl::Decision decision;  // the steering decision this session rode

  double duration_s() const { return end_time - start_time; }
  double achieved_mbps() const {
    return duration_s() > 0.0
               ? static_cast<double>(payload_bytes) * 8e-6 / duration_s()
               : 0.0;
  }
};

struct SteeredOptions {
  RsyncOptions rsync;
  ApiUploadOptions api;
};

class SteeredUploadEngine {
 public:
  /// `api` is bound to the destination provider's front-end; `steering`
  /// must outlive the engine and every in-flight upload.
  SteeredUploadEngine(net::Fabric* fabric, ApiUploadEngine* api,
                      ctrl::Steering* steering)
      : fabric_(fabric), api_(api), steering_(steering), rsync_(fabric) {}

  /// Coroutine form: steers, executes the chain, reports back. Domain
  /// failures (unroutable leg, API rejection) land inside SteeredResult.
  sim::Task<SteeredResult> upload_task(net::NodeId client, FileSpec file,
                                       SteeredOptions options = {});

  /// The embedded per-relay-leg rsync engine; every steered leg's flows
  /// route through its batch layer (the API leg through `api`'s).
  RsyncEngine& rsync() { return rsync_; }

 private:
  net::Fabric* fabric_;
  ApiUploadEngine* api_;
  ctrl::Steering* steering_;
  RsyncEngine rsync_;
};

}  // namespace droute::transfer
