#include "transfer/detour_download.h"

#include <utility>

#include "transfer/file_spec.h"

namespace droute::transfer {

namespace {

/// Same fold as the upload detour: an exceptionally-unwound leg reads as a
/// failed leg with the Task error as its message.
template <typename Leg>
Leg unwrap_leg(const util::Result<Leg>& joined, double now) {
  if (joined.ok()) return joined.value();
  Leg failed{};
  failed.success = false;
  failed.error = joined.error().message;
  failed.start_time = now;
  failed.end_time = now;
  return failed;
}

}  // namespace

sim::Task<DownloadDetourResult> DetourDownloadEngine::download_task(
    net::NodeId client, net::NodeId intermediate, std::string name) {
  sim::Simulator& simulator = *fabric_->simulator();
  DownloadDetourResult result;
  result.start_time = simulator.now();

  auto leg1_task = api_->download_task(intermediate, name);
  const auto leg1_joined = co_await leg1_task;
  const DownloadResult leg1 = unwrap_leg(leg1_joined, simulator.now());
  result.leg1_s = leg1.duration_s();
  result.payload_bytes = leg1.payload_bytes;
  if (!leg1.success) {
    result.error = "download detour leg 1 (API): " + leg1.error;
    result.end_time = simulator.now();
    co_return result;
  }

  // The DTN now holds the object; rsync it down to the client.
  const auto object = api_->server()->stat(name);
  if (!object.ok()) {
    result.error = "download detour: object vanished";
    result.end_time = simulator.now();
    co_return result;
  }
  FileSpec spec;
  spec.name = name;
  spec.bytes = object.value().size;
  spec.seed = object.value().content_seed;

  auto leg2_task = rsync_.push_task(intermediate, client, spec);
  const auto leg2_joined = co_await leg2_task;
  const RsyncResult leg2 = unwrap_leg(leg2_joined, simulator.now());
  result.leg2_s = leg2.duration_s();
  result.success = leg2.success;
  if (!leg2.success) {
    result.error = "download detour leg 2 (rsync): " + leg2.error;
  }
  result.end_time = simulator.now();
  co_return result;
}

void DetourDownloadEngine::download(net::NodeId client,
                                    net::NodeId intermediate,
                                    const std::string& name, Callback done) {
  // Folded task_shim: the Task error channel (escaped exception,
  // cancellation) maps back onto {success, error}; `done` fires exactly once.
  sim::Simulator* simulator = fabric_->simulator();
  auto task = download_task(client, intermediate, name);
  task.on_done([done = std::move(done),
                simulator](const util::Result<DownloadDetourResult>& result) {
    if (result.ok()) {
      done(result.value());
      return;
    }
    DownloadDetourResult failed{};
    failed.success = false;
    failed.error = result.error().message;
    failed.start_time = failed.end_time = simulator->now();
    done(failed);
  });
}

}  // namespace droute::transfer
