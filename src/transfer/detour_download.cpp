#include "transfer/detour_download.h"

#include <memory>

#include "transfer/file_spec.h"

namespace droute::transfer {

void DetourDownloadEngine::download(net::NodeId client,
                                    net::NodeId intermediate,
                                    const std::string& name, Callback done) {
  auto result = std::make_shared<DownloadDetourResult>();
  result->start_time = fabric_->simulator()->now();

  api_->download(
      intermediate, name,
      [this, client, intermediate, name, done,
       result](const DownloadResult& leg1) {
        result->leg1_s = leg1.duration_s();
        result->payload_bytes = leg1.payload_bytes;
        if (!leg1.success) {
          result->error = "download detour leg 1 (API): " + leg1.error;
          result->end_time = fabric_->simulator()->now();
          done(*result);
          return;
        }
        // The DTN now holds the object; rsync it down to the client.
        const auto object = api_->server()->stat(name);
        if (!object.ok()) {
          result->error = "download detour: object vanished";
          result->end_time = fabric_->simulator()->now();
          done(*result);
          return;
        }
        FileSpec spec;
        spec.name = name;
        spec.bytes = object.value().size;
        spec.seed = object.value().content_seed;
        rsync_.push(intermediate, client, spec,
                    [this, done, result](const RsyncResult& leg2) {
                      result->leg2_s = leg2.duration_s();
                      result->success = leg2.success;
                      if (!leg2.success) {
                        result->error =
                            "download detour leg 2 (rsync): " + leg2.error;
                      }
                      result->end_time = fabric_->simulator()->now();
                      done(*result);
                    });
      });
}

}  // namespace droute::transfer
