// Direct cloud-storage download engine (the other half of Sec II's API
// surface): metadata GET, then sequential ranged GETs of API-chunk-sized
// byte ranges, with a client-side digest chain verified against the object's
// committed digest.
#pragma once

#include <functional>
#include <string>

#include "cloud/oauth.h"
#include "cloud/storage_server.h"
#include "net/fabric.h"
#include "sim/task.h"
#include "transfer/batch.h"
#include "transfer/sim_transport.h"

namespace droute::transfer {

struct DownloadResult {
  bool success = false;
  std::string error;
  double start_time = 0.0;
  double end_time = 0.0;
  std::uint64_t payload_bytes = 0;
  int chunks = 0;
  double rtt_s = 0.0;
  bool integrity_ok = false;

  double duration_s() const { return end_time - start_time; }
};

struct ApiDownloadOptions {
  cloud::OAuthSession* oauth = nullptr;
};

class ApiDownloadEngine {
 public:
  using Callback = std::function<void(const DownloadResult&)>;

  ApiDownloadEngine(net::Fabric* fabric, cloud::StorageServer* server,
                    net::NodeId server_node);

  net::NodeId server_node() const { return server_node_; }
  cloud::StorageServer* server() const { return server_; }

  /// Coroutine form: fetches object `name` from the provider down to
  /// `client`. Domain failures land inside DownloadResult.
  sim::Task<DownloadResult> download_task(net::NodeId client, std::string name,
                                          ApiDownloadOptions options = {});

  /// Legacy callback shim over download_task(); `done` fires exactly once.
  void download(net::NodeId client, const std::string& name, Callback done,
                ApiDownloadOptions options = {});

  /// The batched submission layer every ranged GET routes through.
  TransferEngine& batch_engine() { return xfer_; }

 private:
  net::Fabric* fabric_;
  cloud::StorageServer* server_;
  net::NodeId server_node_;
  SimTransport transport_;
  TransferEngine xfer_;
  SegmentId server_segment_ = kInvalidSegment;
};

}  // namespace droute::transfer
