// Bridges Task-returning engine coroutines onto the legacy callback APIs.
//
// Engine coroutines report domain failures inside their result structs
// (`success = false` plus `error`); the Task's util::Result error channel
// is reserved for non-domain outcomes — an uncaught exception in the body
// or a cancelled task. The shim folds that channel back into the struct so
// legacy callers keep observing exactly one `done(result)` with
// `{success, error}` semantics, never a terminate.
#pragma once

#include <utility>

#include "sim/simulator.h"
#include "sim/task.h"

namespace droute::transfer::detail {

template <typename R, typename Callback>
void deliver(sim::Task<R> task, Callback done, sim::Simulator* simulator) {
  task.on_done(
      [done = std::move(done), simulator](const util::Result<R>& result) {
        if (result.ok()) {
          done(result.value());
          return;
        }
        R failed{};
        failed.success = false;
        failed.error = result.error().message;
        failed.start_time = simulator->now();
        failed.end_time = simulator->now();
        done(failed);
      });
}

}  // namespace droute::transfer::detail
