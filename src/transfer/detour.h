// Detour transfer engine — the paper's contribution, plus the pipelined
// extension.
//
// Store-and-forward (the paper's system, Fig 1): rsync the file from the
// client to the intermediate DTN, then upload from the DTN with the
// provider's API. Total time is the *sum* of the legs (e.g. the intro's
// 19 s + 17 s = 36 s vs 87 s direct for UBC -> Google Drive).
//
// Pipelined (our extension, Sec I future work): relay API-sized chunks
// through the DTN as they arrive, overlapping the two legs; total time
// approaches the slower leg plus one chunk's worth of the other.
#pragma once

#include <functional>
#include <string>

#include "sim/task.h"
#include "transfer/api_upload.h"
#include "transfer/rsync_engine.h"

namespace droute::transfer {

enum class DetourMode { kStoreAndForward, kPipelined };

struct DetourResult {
  bool success = false;
  std::string error;
  double start_time = 0.0;
  double end_time = 0.0;
  double leg1_s = 0.0;  // client -> intermediate
  double leg2_s = 0.0;  // intermediate -> provider (store-and-forward only)
  DetourMode mode = DetourMode::kStoreAndForward;
  std::uint64_t payload_bytes = 0;

  double duration_s() const { return end_time - start_time; }
};

struct DetourOptions {
  DetourMode mode = DetourMode::kStoreAndForward;
  RsyncOptions rsync;
  ApiUploadOptions api;
};

class DetourEngine {
 public:
  using Callback = std::function<void(const DetourResult&)>;

  /// `api` is bound to the destination provider's front-end node.
  DetourEngine(net::Fabric* fabric, ApiUploadEngine* api)
      : fabric_(fabric), api_(api), rsync_(fabric), transport_(fabric),
        xfer_(&transport_) {}

  /// Coroutine form: moves `file` from `client` to the provider via
  /// `intermediate`. Domain failures land inside DetourResult — including
  /// a leg that unwound exceptionally (the leg's Task error is folded into
  /// the failed result rather than terminating, see tests).
  sim::Task<DetourResult> transfer_task(net::NodeId client,
                                        net::NodeId intermediate,
                                        FileSpec file,
                                        DetourOptions options = {});

  /// Legacy callback shim over transfer_task(); `done` fires exactly once.
  void transfer(net::NodeId client, net::NodeId intermediate,
                const FileSpec& file, Callback done, DetourOptions options = {});

  /// The batched submission layer the pipelined relay hops route through
  /// (store-and-forward legs go through rsync()/the API engine instead).
  TransferEngine& batch_engine() { return xfer_; }
  /// The embedded client -> DTN rsync engine (leg 1 of store-and-forward).
  RsyncEngine& rsync() { return rsync_; }

 private:
  sim::Task<DetourResult> store_and_forward_task(net::NodeId client,
                                                 net::NodeId intermediate,
                                                 FileSpec file,
                                                 DetourOptions options);
  sim::Task<DetourResult> pipelined_task(net::NodeId client,
                                         net::NodeId intermediate,
                                         FileSpec file,
                                         DetourOptions options);

  net::Fabric* fabric_;
  ApiUploadEngine* api_;
  RsyncEngine rsync_;
  SimTransport transport_;
  TransferEngine xfer_;
};

}  // namespace droute::transfer
