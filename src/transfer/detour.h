// Detour transfer engine — the paper's contribution, plus the pipelined
// extension.
//
// Store-and-forward (the paper's system, Fig 1): rsync the file from the
// client to the intermediate DTN, then upload from the DTN with the
// provider's API. Total time is the *sum* of the legs (e.g. the intro's
// 19 s + 17 s = 36 s vs 87 s direct for UBC -> Google Drive).
//
// Pipelined (our extension, Sec I future work): relay API-sized chunks
// through the DTN as they arrive, overlapping the two legs; total time
// approaches the slower leg plus one chunk's worth of the other.
#pragma once

#include <functional>
#include <string>

#include "transfer/api_upload.h"
#include "transfer/rsync_engine.h"

namespace droute::transfer {

enum class DetourMode { kStoreAndForward, kPipelined };

struct DetourResult {
  bool success = false;
  std::string error;
  double start_time = 0.0;
  double end_time = 0.0;
  double leg1_s = 0.0;  // client -> intermediate
  double leg2_s = 0.0;  // intermediate -> provider (store-and-forward only)
  DetourMode mode = DetourMode::kStoreAndForward;
  std::uint64_t payload_bytes = 0;

  double duration_s() const { return end_time - start_time; }
};

struct DetourOptions {
  DetourMode mode = DetourMode::kStoreAndForward;
  RsyncOptions rsync;
  ApiUploadOptions api;
};

class DetourEngine {
 public:
  using Callback = std::function<void(const DetourResult&)>;

  /// `api` is bound to the destination provider's front-end node.
  DetourEngine(net::Fabric* fabric, ApiUploadEngine* api)
      : fabric_(fabric), api_(api), rsync_(fabric) {}

  /// Moves `file` from `client` to the provider via `intermediate`.
  void transfer(net::NodeId client, net::NodeId intermediate,
                const FileSpec& file, Callback done, DetourOptions options = {});

 private:
  void store_and_forward(net::NodeId client, net::NodeId intermediate,
                         const FileSpec& file, Callback done,
                         DetourOptions options);
  void pipelined(net::NodeId client, net::NodeId intermediate,
                 const FileSpec& file, Callback done, DetourOptions options);

  net::Fabric* fabric_;
  ApiUploadEngine* api_;
  RsyncEngine rsync_;
};

}  // namespace droute::transfer
