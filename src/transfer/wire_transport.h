// WireTransport: the blocking Transport over droute::wire real sockets.
//
// One WRITE request maps to one wire::upload_direct of the request's source
// buffer to the segment's sink port (the sink protocol is whole-object, so
// target_offset only partitions the *local* buffer view the caller already
// applied; it is not sent on the wire). READ has no wire counterpart yet
// and is rejected synchronously.
//
// Threading contract (see transport.h): start() hands the upload to a
// detached-until-drained worker thread, and the completion is delivered
// ONLY from drain_one() on the joining caller's thread — batch state stays
// single-threaded. cancel() is a pre-start flag: a worker that has not yet
// opened its socket settles kAborted, one mid-upload finishes with its real
// fate (upload_direct is uninterruptible by design — the sink protocol has
// no abort frame).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "transfer/batch.h"
#include "transfer/transport.h"

namespace droute::transfer {

class WireTransport final : public Transport {
 public:
  WireTransport();
  /// Drains (joins + delivers) any still-running uploads on the caller's
  /// thread; prefer wait()-ing every batch before destruction.
  ~WireTransport() override;

  [[nodiscard]] util::Result<OpId> start(const Segment& target,
                                         const TransferRequest& request,
                                         CompletionFn done) override;
  void cancel(OpId op) override;
  bool drain_one() override;
  /// Wall seconds since construction (matches obs::Clock::kWall spirit).
  double now() const override;

 private:
  struct Op {
    std::thread worker;
    CompletionFn done;
    std::atomic<bool> cancel{false};
    Completion completion;
  };

  void finish(OpId id, Completion completion);

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::unordered_map<OpId, std::unique_ptr<Op>> ops_;
  std::deque<OpId> finished_;
  OpId next_op_ = 1;
  std::chrono::steady_clock::time_point epoch_;  // analyze: allow(determinism-wall-clock) — wire ops run on real sockets in wall time; request timestamps are relative to this epoch and never reach the simulator
};

}  // namespace droute::transfer
