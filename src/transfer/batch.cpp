#include "transfer/batch.h"

#include "check/contract.h"
#include "obs/recorder.h"
#include "sim/task.h"

namespace droute::transfer {
namespace detail {

namespace {
// Reason stamped on requests a batch never handed to the transport. Matches
// net::TransferAwaitable's pre-start guard so legacy "<leg> flow rejected: "
// compositions stay byte-identical through the batch layer.
constexpr const char* kCancelledBeforeStart = "transfer cancelled before start";
}  // namespace

BatchState::BatchState(TransferEngine* engine, Transport* transport,
                       std::vector<TransferRequest> requests,
                       BatchOptions options)
    : engine_(engine), transport_(transport), options_(options) {
  DROUTE_CHECK(!requests.empty(), "batch must contain at least one request");
  slots_.reserve(requests.size());
  for (TransferRequest& request : requests) {
    Slot slot;
    slot.request = std::move(request);
    slots_.push_back(std::move(slot));
  }
}

const RequestStatus& BatchState::status(std::size_t i) const {
  DROUTE_CHECK(i < slots_.size(), "request index out of range");
  return slots_[i].status;
}

void BatchState::launch() {
  if (launched_ || cancelled_) return;
  launched_ = true;
  pump();
  maybe_finish();
}

void BatchState::pump() {
  while (next_to_start_ < slots_.size() && !cancelled_ && !tripped_ &&
         (options_.concurrency == 0 || in_flight_ < options_.concurrency)) {
    const std::size_t i = next_to_start_++;
    start_one(i);
  }
}

void BatchState::start_one(std::size_t i) {
  Slot& slot = slots_[i];
  if (slot.status.settled()) return;
  const Segment* target = engine_->segment(slot.request.target_id);
  if (target == nullptr) {
    settle(i, RequestState::kRejected, "unknown target segment", 0);
    if (options_.fail_fast) trip_fail_fast();
    return;
  }
  slot.status.start_s = transport_->now();
  // The completion holds the batch alive: a dropped BatchHandle still
  // settles (and releases the engine's inflight accounting) once every
  // started request finishes.
  std::shared_ptr<BatchState> self = shared_from_this();
  auto op = transport_->start(
      *target, slot.request, [self, i](const Transport::Completion& done) {
        self->on_complete(i, done);
      });
  if (!op.ok()) {
    settle(i, RequestState::kRejected, op.error().message, 0);
    if (options_.fail_fast) trip_fail_fast();
    return;
  }
  slot.op = op.value();
  slot.status.state = RequestState::kInFlight;
  ++in_flight_;
}

void BatchState::on_complete(std::size_t i, const Transport::Completion& done) {
  Slot& slot = slots_[i];
  if (slot.status.settled()) return;  // already cancelled pre-delivery
  slot.op = Transport::kNoOp;
  --in_flight_;
  switch (done.fate) {
    case TransferFate::kCompleted:
      settle(i, RequestState::kCompleted, done.error, done.bytes);
      break;
    case TransferFate::kAborted:
      settle(i, RequestState::kAborted, done.error, done.bytes);
      break;
    case TransferFate::kLinkFailed:
      settle(i, RequestState::kLinkFailed, done.error, done.bytes);
      break;
  }
  pump();  // a freed concurrency slot starts the next pending request
  maybe_finish();
}

void BatchState::settle(std::size_t i, RequestState state, std::string error,
                        std::uint64_t bytes) {
  Slot& slot = slots_[i];
  DROUTE_CHECK(!slot.status.settled(), "request settled twice");
  const bool never_started = slot.status.state == RequestState::kPending &&
                             state == RequestState::kCancelled;
  slot.status.state = state;
  slot.status.error = std::move(error);
  slot.status.bytes = bytes;
  slot.status.end_s = transport_->now();
  if (never_started) slot.status.start_s = slot.status.end_s;
  ++settled_;
  if (state == RequestState::kCompleted) ++completed_;
}

void BatchState::trip_fail_fast() {
  if (tripped_) return;
  tripped_ = true;
  // Requests never handed to the transport settle as cancelled; in-flight
  // ones keep running detached (the completion lambdas keep `this` alive)
  // so their bytes still drain through the fabric exactly as the legacy
  // detached stripe frames did.
  for (std::size_t i = next_to_start_; i < slots_.size(); ++i) {
    if (!slots_[i].status.settled()) {
      settle(i, RequestState::kCancelled, kCancelledBeforeStart, 0);
    }
  }
  next_to_start_ = slots_.size();
}

void BatchState::cancel() {
  if (cancelled_) return;
  cancelled_ = true;
  if (!launched_) {
    cancel_before_start_locked();
    return;
  }
  // Index order: first settle everything not yet started (so completions
  // delivered during the aborts cannot start new work), then abort the
  // in-flight requests the way the legacy all_of cascade unwound stripes.
  for (std::size_t i = next_to_start_; i < slots_.size(); ++i) {
    if (!slots_[i].status.settled()) {
      settle(i, RequestState::kCancelled, kCancelledBeforeStart, 0);
    }
  }
  next_to_start_ = slots_.size();
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].status.state == RequestState::kInFlight &&
        slots_[i].op != Transport::kNoOp) {
      // Event-driven transports settle the slot synchronously (kAborted)
      // inside this call; blocking ones at the next drain.
      transport_->cancel(slots_[i].op);
    }
  }
  maybe_finish();
}

void BatchState::cancel_before_start() {
  if (launched_ || cancelled_) return;
  cancelled_ = true;
  cancel_before_start_locked();
}

void BatchState::cancel_before_start_locked() {
  launched_ = true;  // nothing may launch after this
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (!slots_[i].status.settled()) {
      settle(i, RequestState::kCancelled, kCancelledBeforeStart, 0);
    }
  }
  next_to_start_ = slots_.size();
  maybe_finish();
}

void BatchState::set_waiter(std::function<void()> waiter) {
  DROUTE_CHECK(!waiter_, "batch already has a waiter");
  if (resume_ready()) {
    waiter();
    return;
  }
  waiter_ = std::move(waiter);
}

void BatchState::maybe_finish() {
  if (!launched_) return;
  if (all_settled() && !finished_) {
    finished_ = true;
    engine_->on_batch_settled();
  }
  if (resume_ready() && waiter_) {
    auto waiter = std::move(waiter_);
    waiter_ = nullptr;
    waiter();
  }
}

void BatchState::drain_blocking() {
  launch();
  while (!all_settled()) {
    if (!transport_->drain_one()) {
      DROUTE_CHECK(all_settled(),
                   "transport has nothing to drain but batch is unsettled");
      break;
    }
  }
}

}  // namespace detail

bool BatchHandle::wait() {
  state_->drain_blocking();
  return state_->all_completed();
}

TransferEngine::TransferEngine(Transport* transport) : transport_(transport) {
  DROUTE_CHECK(transport != nullptr, "TransferEngine needs a transport");
  obs_batches_ = obs::counter("transfer.batches_submitted_total");
  obs_requests_ = obs::counter("transfer.batch_requests_total");
  obs_inflight_ = obs::gauge("transfer.batch_inflight");
}

SegmentId TransferEngine::register_segment(Segment segment) {
  segments_.push_back(std::move(segment));
  return static_cast<SegmentId>(segments_.size());
}

SegmentId TransferEngine::ensure_node_segment(net::NodeId node) {
  const auto it = node_segments_.find(node);
  if (it != node_segments_.end()) return it->second;
  Segment segment;
  segment.name = "node-" + std::to_string(node);
  segment.node = node;
  const SegmentId id = register_segment(std::move(segment));
  node_segments_.emplace(node, id);
  return id;
}

const Segment* TransferEngine::segment(SegmentId id) const {
  if (id == kInvalidSegment || id > segments_.size()) return nullptr;
  return &segments_[id - 1];
}

BatchHandle TransferEngine::submit_batch(std::vector<TransferRequest> requests,
                                         BatchOptions options) {
  obs::add(obs_batches_);
  obs::add(obs_requests_, requests.size());
  ++batches_inflight_;
  obs::add(obs_inflight_, 1.0);
  return BatchHandle(std::make_shared<detail::BatchState>(
      this, transport_, std::move(requests), options));
}

BatchHandle TransferEngine::submit(TransferRequest request,
                                   BatchOptions options) {
  std::vector<TransferRequest> requests;
  requests.push_back(std::move(request));
  return submit_batch(std::move(requests), options);
}

void TransferEngine::on_batch_settled() {
  DROUTE_CHECK(batches_inflight_ > 0, "batch settled twice");
  --batches_inflight_;
  obs::add(obs_inflight_, -1.0);
}

}  // namespace droute::transfer
