#include "transfer/parallel.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "check/contract.h"
#include "net/fabric_await.h"
#include "sim/task.h"
#include "transfer/task_shim.h"
#include "util/result.h"

namespace droute::transfer {

namespace {

/// One stripe: a single flow carrying a contiguous byte range. Yields the
/// flow's stats (any outcome) or an error when the fabric refused to start
/// the flow at all.
/// The Fabric outlives every stripe: push_task() co_awaits all stripes it
/// spawns before returning, and the fabric outlives the engine.
sim::Task<net::FlowStats> stripe_task(net::Fabric& fabric, net::NodeId src,  // NOLINT(cppcoreguidelines-avoid-reference-coroutine-parameters)
                                      net::NodeId dst, std::uint64_t bytes) {
  net::FlowOptions options;
  options.charge_slow_start = true;  // every stream ramps independently
  options.label = "parallel-stripe";
  auto flow = net::transfer(fabric, src, dst, bytes, options);
  const auto stats = co_await flow;
  if (!stats.ok()) co_return stats.error();
  co_return stats.value();
}

}  // namespace

sim::Task<ParallelPushResult> ParallelPushEngine::push_task(net::NodeId src,
                                                            net::NodeId dst,
                                                            FileSpec file,
                                                            int streams) {
  DROUTE_CHECK(streams >= 1, "need at least one stream");
  sim::Simulator& simulator = *fabric_->simulator();
  ParallelPushResult result;
  result.start_time = simulator.now();
  result.payload_bytes = file.bytes;
  result.streams = streams;

  const std::uint64_t effective_streams =
      std::min<std::uint64_t>(static_cast<std::uint64_t>(streams),
                              std::max<std::uint64_t>(1, file.bytes));

  const std::uint64_t stripe = file.bytes / effective_streams;
  std::vector<sim::Task<net::FlowStats>> stripes;
  stripes.reserve(static_cast<std::size_t>(effective_streams));
  std::uint64_t offset = 0;
  for (std::uint64_t i = 0; i < effective_streams; ++i) {
    const std::uint64_t length =
        i + 1 == effective_streams ? file.bytes - offset : stripe;
    stripes.push_back(stripe_task(*fabric_, src, dst,
                                  std::max<std::uint64_t>(1, length)));
    if (stripes.back().done() && !stripes.back().result().ok()) {
      // Stripe rejected synchronously. Earlier stripes may already be in
      // flight; report the failure once and let them finish detached (the
      // legacy behaviour — their frames self-release as the flows drain).
      result.success = false;
      result.error =
          "stripe rejected: " + stripes.back().result().error().message;
      result.end_time = simulator.now();
      co_return result;
    }
    offset += length;
  }

  auto joined = sim::all_of(std::move(stripes));
  const auto outcomes = co_await joined;
  bool failed = false;
  if (!outcomes.ok()) {
    failed = true;  // the join itself was cancelled
  } else {
    for (const auto& stats : outcomes.value()) {
      if (!stats.ok() ||
          stats.value().outcome != net::FlowOutcome::kCompleted) {
        failed = true;
      }
      if (stats.ok()) {
        // Completion is gated by the last stripe; failed stripes still ran
        // for their recorded duration.
        result.slowest_stream_s =
            std::max(result.slowest_stream_s, stats.value().duration_s());
      }
    }
  }
  result.success = !failed;
  if (failed) result.error = "stripe transfer failed";
  result.end_time = simulator.now();
  co_return result;
}

void ParallelPushEngine::push(net::NodeId src, net::NodeId dst,
                              const FileSpec& file, int streams,
                              Callback done) {
  detail::deliver(push_task(src, dst, file, streams), std::move(done),
                  fabric_->simulator());
}

}  // namespace droute::transfer
