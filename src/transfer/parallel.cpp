#include "transfer/parallel.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "check/contract.h"
#include "sim/task.h"
#include "util/result.h"

namespace droute::transfer {

sim::Task<ParallelPushResult> ParallelPushEngine::push_task(net::NodeId src,
                                                            net::NodeId dst,
                                                            FileSpec file,
                                                            int streams) {
  DROUTE_CHECK(streams >= 1, "need at least one stream");
  sim::Simulator& simulator = *fabric_->simulator();
  ParallelPushResult result;
  result.start_time = simulator.now();
  result.payload_bytes = file.bytes;
  result.streams = streams;

  const std::uint64_t effective_streams =
      std::min<std::uint64_t>(static_cast<std::uint64_t>(streams),
                              std::max<std::uint64_t>(1, file.bytes));

  // One batch, one WRITE request per stripe. fail_fast reproduces the
  // legacy contract: a synchronously rejected stripe reports the failure
  // once and immediately, while earlier in-flight stripes finish detached
  // (their completions release the batch state as the flows drain).
  const SegmentId target = xfer_.ensure_node_segment(dst);
  const std::uint64_t stripe = file.bytes / effective_streams;
  std::vector<TransferRequest> requests;
  requests.reserve(static_cast<std::size_t>(effective_streams));
  std::uint64_t offset = 0;
  for (std::uint64_t i = 0; i < effective_streams; ++i) {
    const std::uint64_t length =
        i + 1 == effective_streams ? file.bytes - offset : stripe;
    TransferRequest request;
    request.opcode = Opcode::kWrite;
    request.source_node = src;
    request.target_id = target;
    request.target_offset = offset;
    request.length = std::max<std::uint64_t>(1, length);
    request.charge_slow_start = true;  // every stream ramps independently
    request.label = "parallel-stripe";
    requests.push_back(std::move(request));
    offset += length;
  }

  BatchOptions options;
  options.fail_fast = true;
  auto stripes = xfer_.submit_batch(std::move(requests), options);
  if (!co_await stripes) {
    for (std::size_t i = 0; i < stripes.size(); ++i) {
      const RequestStatus& st = stripes.status(i);
      if (st.state == RequestState::kRejected) {
        result.success = false;
        result.error = "stripe rejected: " + st.error;
        result.end_time = simulator.now();
        co_return result;
      }
    }
  }
  bool failed = false;
  if (stripes.cancelled()) {
    failed = true;  // the join itself was cancelled
  } else {
    for (std::size_t i = 0; i < stripes.size(); ++i) {
      const RequestStatus& st = stripes.status(i);
      if (!st.completed()) failed = true;
      if (st.ran()) {
        // Completion is gated by the last stripe; failed stripes still ran
        // for their recorded duration.
        result.slowest_stream_s =
            std::max(result.slowest_stream_s, st.duration_s());
      }
    }
  }
  result.success = !failed;
  if (failed) result.error = "stripe transfer failed";
  result.end_time = simulator.now();
  co_return result;
}

void ParallelPushEngine::push(net::NodeId src, net::NodeId dst,
                              const FileSpec& file, int streams,
                              Callback done) {
  // Folded task_shim: the Task error channel (escaped exception,
  // cancellation) maps back onto {success, error}; `done` fires exactly once.
  sim::Simulator* simulator = fabric_->simulator();
  auto task = push_task(src, dst, file, streams);
  task.on_done([done = std::move(done),
                simulator](const util::Result<ParallelPushResult>& result) {
    if (result.ok()) {
      done(result.value());
      return;
    }
    ParallelPushResult failed{};
    failed.success = false;
    failed.error = result.error().message;
    failed.start_time = failed.end_time = simulator->now();
    done(failed);
  });
}

}  // namespace droute::transfer
