#include "transfer/parallel.h"

#include <algorithm>
#include <memory>

#include "check/contract.h"
#include "util/result.h"

namespace droute::transfer {

namespace {
struct ParallelJob {
  ParallelPushResult result;
  ParallelPushEngine::Callback done;
  int remaining = 0;
  bool failed = false;
  bool reported = false;  // `done` fires exactly once
};
}  // namespace

void ParallelPushEngine::push(net::NodeId src, net::NodeId dst,
                              const FileSpec& file, int streams,
                              Callback done) {
  DROUTE_CHECK(streams >= 1, "need at least one stream");
  auto job = std::make_shared<ParallelJob>();
  job->done = std::move(done);
  job->result.start_time = fabric_->simulator()->now();
  job->result.payload_bytes = file.bytes;
  job->result.streams = streams;

  const std::uint64_t effective_streams =
      std::min<std::uint64_t>(static_cast<std::uint64_t>(streams),
                              std::max<std::uint64_t>(1, file.bytes));
  job->remaining = static_cast<int>(effective_streams);

  const std::uint64_t stripe = file.bytes / effective_streams;
  std::uint64_t offset = 0;
  for (std::uint64_t i = 0; i < effective_streams; ++i) {
    const std::uint64_t length =
        i + 1 == effective_streams ? file.bytes - offset : stripe;
    net::FlowOptions options;
    options.charge_slow_start = true;  // every stream ramps independently
    options.label = "parallel-stripe";
    auto flow = fabric_->start_flow(
        src, dst, std::max<std::uint64_t>(1, length),
        [this, job](const net::FlowStats& stats) {
          if (stats.outcome != net::FlowOutcome::kCompleted) {
            job->failed = true;
          }
          job->result.slowest_stream_s =
              std::max(job->result.slowest_stream_s, stats.duration_s());
          if (--job->remaining == 0 && !job->reported) {
            job->reported = true;
            job->result.success = !job->failed;
            if (job->failed) job->result.error = "stripe transfer failed";
            job->result.end_time = fabric_->simulator()->now();
            job->done(job->result);
          }
        },
        options);
    if (!flow.ok()) {
      // Earlier stripes may already be in flight; report the failure once
      // and let their completions no-op against `reported`.
      job->failed = true;
      if (!job->reported) {
        job->reported = true;
        job->result.success = false;
        job->result.error = "stripe rejected: " + flow.error().message;
        job->result.end_time = fabric_->simulator()->now();
        job->done(job->result);
      }
      return;
    }
    offset += length;
  }
}

}  // namespace droute::transfer
