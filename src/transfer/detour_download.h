// Detoured download: provider -> intermediate DTN via the provider API,
// then DTN -> client via rsync (the mirror image of the paper's upload
// detour; the paper's clients both upload and download, Sec II).
// Store-and-forward: total = leg1 + leg2.
#pragma once

#include <functional>
#include <string>

#include "sim/task.h"
#include "transfer/api_download.h"
#include "transfer/rsync_engine.h"

namespace droute::transfer {

struct DownloadDetourResult {
  bool success = false;
  std::string error;
  double start_time = 0.0;
  double end_time = 0.0;
  double leg1_s = 0.0;  // provider -> intermediate (API)
  double leg2_s = 0.0;  // intermediate -> client (rsync)
  std::uint64_t payload_bytes = 0;

  double duration_s() const { return end_time - start_time; }
};

class DetourDownloadEngine {
 public:
  using Callback = std::function<void(const DownloadDetourResult&)>;

  DetourDownloadEngine(net::Fabric* fabric, ApiDownloadEngine* api)
      : fabric_(fabric), api_(api), rsync_(fabric) {}

  /// Coroutine form: fetches `name` to `client` via `intermediate`.
  sim::Task<DownloadDetourResult> download_task(net::NodeId client,
                                                net::NodeId intermediate,
                                                std::string name);

  /// Legacy callback shim over download_task(); `done` fires exactly once.
  void download(net::NodeId client, net::NodeId intermediate,
                const std::string& name, Callback done);

  /// The embedded DTN -> client rsync engine (leg 2); its flows and the
  /// API leg's all route through per-engine batch layers.
  RsyncEngine& rsync() { return rsync_; }

 private:
  net::Fabric* fabric_;
  ApiDownloadEngine* api_;
  RsyncEngine rsync_;
};

}  // namespace droute::transfer
