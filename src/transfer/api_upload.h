// Direct cloud-storage upload engine: drives a provider's REST upload API
// (session init, sequential chunk PUTs, finalize) over the simulated fabric,
// updating the provider's StorageServer state machine as chunks land.
#pragma once

#include <functional>
#include <string>

#include "cloud/oauth.h"
#include "cloud/provider.h"
#include "cloud/storage_server.h"
#include "net/fabric.h"
#include "sim/task.h"
#include "transfer/batch.h"
#include "transfer/file_spec.h"
#include "transfer/sim_transport.h"

namespace droute::obs {
class Counter;
class Histogram;
}  // namespace droute::obs

namespace droute::transfer {

struct UploadResult {
  bool success = false;
  std::string error;
  double start_time = 0.0;
  double end_time = 0.0;
  std::uint64_t payload_bytes = 0;
  std::uint64_t wire_bytes = 0;    // payload + HTTP overhead
  int chunks = 0;
  int throttle_retries = 0;        // chunk PUTs retried after HTTP 429
  double rtt_s = 0.0;              // client<->server model RTT
  bool token_refreshed = false;

  double duration_s() const { return end_time - start_time; }
};

struct ApiUploadOptions {
  /// OAuth session to authenticate with; nullptr skips auth modelling.
  cloud::OAuthSession* oauth = nullptr;
};

/// Asynchronous engine bound to one provider front-end node.
class ApiUploadEngine {
 public:
  using Callback = std::function<void(const UploadResult&)>;

  ApiUploadEngine(net::Fabric* fabric, cloud::StorageServer* server,
                  net::NodeId server_node);

  net::NodeId server_node() const { return server_node_; }
  cloud::StorageServer* server() const { return server_; }

  /// Coroutine form: session init, sequential chunk PUTs (with 429
  /// backoff), finalize. Failure cases — unroutable client, API/server
  /// rejections mid-stream — land inside UploadResult; the Result error
  /// channel carries only escaped exceptions / cancellation.
  sim::Task<UploadResult> upload_task(net::NodeId client, FileSpec file,
                                      ApiUploadOptions options = {});

  /// Legacy callback shim over upload_task(); `done` fires exactly once.
  void upload(net::NodeId client, const FileSpec& file, Callback done,
              ApiUploadOptions options = {});

  /// The batched submission layer every chunk PUT routes through (chaos
  /// leak audits poll batches_inflight() here).
  TransferEngine& batch_engine() { return xfer_; }

 private:
  net::Fabric* fabric_;
  cloud::StorageServer* server_;
  net::NodeId server_node_;
  SimTransport transport_;
  TransferEngine xfer_;
  SegmentId server_segment_ = kInvalidSegment;
  // obs handles (null when recording is disabled at construction).
  obs::Counter* obs_throttle_retries_ = nullptr;
  obs::Histogram* obs_backoff_wait_ = nullptr;
};

}  // namespace droute::transfer
