// FileSpec: a synthetic test file identified by (name, size, seed) without
// materializing its bytes.
//
// Measurement campaigns move hundreds of 10-100 MB files; materializing and
// MD5-ing them would dominate wall-clock time without adding fidelity. A
// FileSpec instead derives each chunk's digest deterministically from
// (seed, offset, length). The digests flow through the exact same
// client/server integrity machinery as real content (order- and
// completeness-sensitive), so protocol bugs still fail loudly; only the
// byte-level hashing is elided. Tests that need real bytes use rsyncx
// directly on materialized blobs.
#pragma once

#include <cstdint>
#include <string>

#include "rsyncx/md5.h"

namespace droute::transfer {

struct FileSpec {
  std::string name;
  std::uint64_t bytes = 0;
  std::uint64_t seed = 0;

  /// Deterministic digest standing in for MD5(content[offset, offset+len)).
  rsyncx::Md5Digest chunk_digest(std::uint64_t offset,
                                 std::uint64_t length) const;
};

/// Convenience: the paper's "N MB binary file of random data".
FileSpec make_file_mb(std::uint64_t megabytes, std::uint64_t seed);

}  // namespace droute::transfer
