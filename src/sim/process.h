// Coroutine processes over the discrete-event kernel (C++20).
//
// Callback-style event code inverts control flow; a Process is a coroutine
// that reads top-to-bottom and suspends on simulated time:
//
//   sim::Process script(sim::Simulator& s, int& counter) {
//     co_await sim::delay(s, 2.0);   // 2 simulated seconds pass
//     ++counter;
//     co_await sim::delay(s, 3.0);
//     ++counter;
//   }
//
// Semantics:
//   * The body runs eagerly until its first suspension (initial_suspend is
//     suspend_never), inside the caller's stack frame.
//   * Each `co_await delay(...)` schedules a resume event; ties with plain
//     events follow the kernel's deterministic FIFO order.
//   * Processes are detached: the frame destroys itself when the body
//     returns. The caller may keep the returned handle to poll done().
//   * All pending resumes live in the simulator's queue, so a Process must
//     not outlive its Simulator (same rule as any scheduled handler).
#pragma once

#include <coroutine>
#include <exception>
#include <memory>

#include "sim/simulator.h"

namespace droute::sim {

class Process {
 public:
  struct promise_type {
    std::shared_ptr<bool> done = std::make_shared<bool>(false);

    Process get_return_object() { return Process(done); }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() { *done = true; }
    // A detached process has nowhere to deliver an exception; simulation
    // invariants escaping a process are fatal by design (same policy as
    // DROUTE_CHECK inside event handlers).
    void unhandled_exception() { std::terminate(); }
  };

  /// True once the process body has returned.
  bool done() const { return done_ == nullptr || *done_; }

 private:
  explicit Process(std::shared_ptr<bool> done) : done_(std::move(done)) {}
  std::shared_ptr<bool> done_;
};

/// Awaitable: suspend the process for `dt` simulated seconds.
class DelayAwaitable {
 public:
  DelayAwaitable(Simulator& simulator, Time dt)
      : simulator_(&simulator), dt_(dt) {}

  bool await_ready() const noexcept { return dt_ <= 0.0; }
  void await_suspend(std::coroutine_handle<> handle) {
    simulator_->schedule_in(dt_, [handle] { handle.resume(); });
  }
  void await_resume() const noexcept {}

 private:
  Simulator* simulator_;
  Time dt_;
};

inline DelayAwaitable delay(Simulator& simulator, Time dt) {
  return DelayAwaitable(simulator, dt);
}

/// Awaitable: suspend until absolute simulated time `at` (no-op if past).
inline DelayAwaitable delay_until(Simulator& simulator, Time at) {
  return DelayAwaitable(simulator, at - simulator.now());
}

}  // namespace droute::sim
