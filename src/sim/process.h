// Compatibility shim: sim::Process predates sim::Task<T> (sim/task.h) and
// is now an alias for Task<void>. Existing process-style scripts keep
// compiling unchanged:
//
//   sim::Process script(sim::Simulator& s, int& counter) {
//     co_await sim::delay(s, 2.0);   // 2 simulated seconds pass
//     ++counter;
//   }
//
// What changed relative to the original detached Process:
//   * the handle is joinable (done()) and cancellable (cancel());
//   * an escaping exception becomes a failed util::Status on the handle
//     instead of std::terminate();
//   * co_await sim::delay(...) yields a bool — true when the delay
//     elapsed, false when the process was cancelled mid-sleep (detached
//     scripts can keep ignoring it).
// New code should say Task<void> (or a value-returning Task<T>) directly.
#pragma once

#include "sim/task.h"

namespace droute::sim {

using Process = Task<void>;

}  // namespace droute::sim
