// Discrete-event simulation kernel.
//
// A Simulator owns a clock (double seconds) and an event queue. Events fire
// in nondecreasing time order; ties break by scheduling order, which makes
// every simulation fully deterministic for a fixed seed and input.
//
// The kernel knows nothing about networks — the net/ and transfer/ layers
// schedule events here. Handlers may schedule further events and cancel
// pending ones (cancellation is lazy: cancelled events are skipped when
// popped, which keeps scheduling O(log n)).
#pragma once

#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <unordered_map>
#include <vector>

namespace droute::obs {
class Counter;
class Gauge;
}  // namespace droute::obs

namespace droute::sim {

using Time = double;  // simulated seconds since simulation start

inline constexpr Time kTimeInfinity = std::numeric_limits<Time>::infinity();

/// Approved Time comparison helpers. Direct `==`/`!=` on Time is banned by
/// the repo lint (tools/lint.py): exact float equality on simulated clocks
/// is almost always a latent bug. Spell the intent instead — an explicit
/// `eps` of 0 means "bitwise-identical times, on purpose".
inline bool time_eq(Time a, Time b, Time eps = 0.0) {
  return std::fabs(a - b) <= eps;
}
inline bool time_ne(Time a, Time b, Time eps = 0.0) {
  return !time_eq(a, b, eps);
}

/// Identifies a scheduled event so it can be cancelled.
struct EventId {
  std::uint64_t value = 0;
  bool valid() const { return value != 0; }
};

class Simulator {
 public:
  using Handler = std::function<void()>;

  /// Resolves obs instrument handles against the recorder installed at
  /// construction time (nullptr — and therefore free — when none is).
  Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  Time now() const { return now_; }

  /// Schedules `handler` to run at absolute time `at` (must be >= now()).
  EventId schedule_at(Time at, Handler handler);

  /// Schedules `handler` to run `delay` seconds from now (delay >= 0).
  EventId schedule_in(Time delay, Handler handler);

  /// Cancels a pending event. Cancelling an already-fired or unknown event
  /// is a no-op returning false.
  bool cancel(EventId id);

  /// Number of pending (non-cancelled) events. Exact: a live event has its
  /// handler registered, so this never miscounts against heap entries whose
  /// cancelled twins were already lazily skimmed off the heap.
  std::size_t pending() const { return handlers_.size(); }

  /// Time of the next pending event, or kTimeInfinity when idle.
  Time next_event_time() const;

  /// Runs a single event. Returns false when the queue is empty.
  bool step();

  /// Runs until the queue drains. `max_events` guards against runaway
  /// self-rescheduling loops; exceeding it is a logic error.
  void run(std::uint64_t max_events = 50'000'000);

  /// Runs events with time <= until; afterwards now() == max(now, until)
  /// unless the queue drained earlier.
  void run_until(Time until, std::uint64_t max_events = 50'000'000);

  /// Total events executed over the simulator's lifetime.
  std::uint64_t executed_events() const { return executed_; }

  /// Cancelled entries still parked in the heap (lazily reclaimed). Every
  /// live event has exactly one heap entry and one handler, so the backlog
  /// is the difference. A large backlog after a drain signals a component
  /// cancelling timers it never lets expire; check::SimAuditor audits this
  /// at quiescence.
  std::size_t cancelled_backlog() const {
    return heap_.size() - handlers_.size();
  }

  /// Observer invoked at the top of every executed event, after the clock
  /// advances but before the handler runs. One observer at a time (last
  /// wins; nullptr clears). Used by check::SimAuditor; not a general pub/sub.
  using StepObserver = std::function<void(Time)>;
  void set_step_observer(StepObserver observer) {
    step_observer_ = std::move(observer);
  }

  /// Brackets a window in which worker threads may run (the sharded fabric
  /// fill, DESIGN.md §16). While a section is open, schedule_at/schedule_in/
  /// cancel are contract violations: workers must never touch the event
  /// queue — all scheduling happens in the single-threaded merge that
  /// follows, so event order can never depend on thread timing. The flag is
  /// a plain bool on purpose: it is written by the owning thread only, and
  /// the fork/join of the worker batch orders those writes against any
  /// (buggy, about-to-throw) worker read.
  void begin_parallel_section();
  void end_parallel_section();
  bool in_parallel_section() const { return in_parallel_section_; }

 private:
  struct Entry {
    Time at;
    std::uint64_t seq;  // tie-break: FIFO among same-time events
    std::uint64_t id;
  };
  struct EntryLater {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  // Pops cancelled entries off the heap top.
  void skim_cancelled() const;

  Time now_ = 0.0;
  bool in_parallel_section_ = false;
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  // Handlers are stored out-of-heap so Entry stays trivially copyable. The
  // handler table doubles as the liveness set: cancel() erases the handler
  // and the orphaned heap entry is skipped when it reaches the top.
  mutable std::priority_queue<Entry, std::vector<Entry>, EntryLater> heap_;
  std::unordered_map<std::uint64_t, Handler> handlers_;
  StepObserver step_observer_;
  // obs handles (null when recording is disabled at construction).
  obs::Counter* obs_events_executed_ = nullptr;
  obs::Gauge* obs_queue_depth_ = nullptr;
};

}  // namespace droute::sim
