// Structured concurrency over the discrete-event kernel (C++20).
//
// sim::Task<T> is a value-returning, joinable, cancellable coroutine: the
// production successor of the detached sim::Process (process.h is now a
// thin alias over Task<void>). A multi-leg transfer reads top-to-bottom:
//
//   sim::Task<double> detour(net::Fabric& fabric, ...) {
//     auto leg1 = net::transfer(fabric, client, dtn, bytes);
//     const auto stats = co_await leg1;              // Result<FlowStats>
//     if (!stats.ok()) co_return stats.error();      // maps into the Result
//     ...
//     co_return elapsed;
//   }
//
// Semantics:
//   * Eager start: the body runs inside the caller's stack frame until its
//     first suspension (initial_suspend is suspend_never), so an engine's
//     synchronous argument validation still fails synchronously.
//   * co_return maps onto util::Result<T>: a task can return a T, a
//     util::Error, or a whole util::Result<T>. Task<void> completes with a
//     util::Status. An exception escaping the body is caught and becomes
//     an error result — never std::terminate (the old Process policy).
//   * Join: poll done()/result(), register on_done(fn), or co_await the
//     task from another task (completion resumes the awaiter in the same
//     sim event, like a callback would have fired).
//   * Cancellation is cooperative: cancel() sets a flag and cancels the
//     awaitable the task is currently parked on (pending sim event,
//     in-flight fabric flow, Notify wait). The body resumes, observes the
//     failure (delay() and Notify::wait() return false; a cancelled flow
//     completes with kAborted), runs its cleanup, and co_returns normally
//     — frames are never destroyed mid-body, so RAII cleanup always runs.
//   * Lifetime: every pending resume lives in the simulator's queue, so a
//     Task must not outlive its Simulator (cancel() it first if tearing
//     down early). See DESIGN.md §10.
//   * Awaiting is lvalue-only (awaiter methods are &-qualified): GCC 12
//     miscompiles temporaries awaited directly in a co_await expression
//     (GCC PR 99576 family), so `co_await make_task()` is rejected at
//     compile time — bind the task to a local first.
#pragma once

#include <coroutine>
#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "check/contract.h"
#include "sim/simulator.h"
#include "util/result.h"

namespace droute::sim {

/// util::Error codes used by the Task layer.
inline constexpr int kErrCancelled = 499;
inline constexpr int kErrTimeout = 408;

namespace detail {

/// Type-erased slice of a task's shared state, visible to awaitables
/// through TaskPromiseBase without knowing the task's value type.
struct TaskStateBase {
  bool finished = false;          // body ran to completion (frame is gone)
  bool cancel_requested = false;  // cooperative-cancel flag
  // Cancels whatever awaitable the task is currently parked on; armed by
  // the awaitable at suspension, disarmed on normal resume.
  std::function<void()> cancel_pending;
  // Fired (in registration order) after the task finishes and its frame
  // is destroyed. Waiters must not throw.
  std::vector<std::function<void()>> waiters;
};

inline void request_cancel(TaskStateBase& state) {
  if (state.finished || state.cancel_requested) return;
  state.cancel_requested = true;
  if (state.cancel_pending) {
    auto canceller = std::move(state.cancel_pending);
    state.cancel_pending = nullptr;
    canceller();  // resumes the task, which unwinds cooperatively
  }
}

}  // namespace detail

/// Non-template base of every Task promise. Awaitables detect task-aware
/// coroutines via std::is_base_of_v<TaskPromiseBase, Promise> in their
/// templated await_suspend and use this interface to participate in
/// cancellation; plain std::coroutine_handle<> users keep working.
class TaskPromiseBase {
 public:
  bool cancel_requested() const { return base_state_->cancel_requested; }
  void arm_canceller(std::function<void()> canceller) {
    base_state_->cancel_pending = std::move(canceller);
  }
  void disarm_canceller() { base_state_->cancel_pending = nullptr; }

 protected:
  detail::TaskStateBase* base_state_ = nullptr;
};

namespace detail {

/// Supplies the co_return surface: a promise must define exactly one of
/// return_value / return_void, so the split lives in a CRTP base.
template <typename T, typename Derived>
struct PromiseReturn {
  void return_value(T value) {
    static_cast<Derived*>(this)->complete(util::Result<T>(std::move(value)));
  }
  void return_value(util::Error error) {
    static_cast<Derived*>(this)->complete(util::Result<T>(std::move(error)));
  }
  void return_value(util::Result<T> result) {
    static_cast<Derived*>(this)->complete(std::move(result));
  }
};

template <typename Derived>
struct PromiseReturn<void, Derived> {
  void return_void() {
    static_cast<Derived*>(this)->complete(util::Status::success());
  }
};

}  // namespace detail

template <typename T = void>
class Task {
 public:
  /// What joining the task yields: Result<T>, or Status for Task<void>.
  using result_type =
      std::conditional_t<std::is_void_v<T>, util::Status, util::Result<T>>;

  class promise_type;

 private:
  struct State : detail::TaskStateBase {
    std::optional<result_type> result;
  };

  /// Destroys the frame before resuming joiners, so a waiter observes the
  /// task fully finished (and the frame's RAII state released).
  struct FinalAwaiter {
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<promise_type> handle) noexcept {
      std::shared_ptr<State> state = handle.promise().take_state();
      handle.destroy();
      state->finished = true;
      state->cancel_pending = nullptr;
      auto waiters = std::move(state->waiters);
      state->waiters.clear();
      for (auto& waiter : waiters) waiter();
    }
    void await_resume() const noexcept {}
  };

 public:
  class promise_type
      : public TaskPromiseBase,
        public detail::PromiseReturn<T, promise_type> {
   public:
    promise_type() : state_(std::make_shared<State>()) {
      TaskPromiseBase::base_state_ = state_.get();
    }

    Task get_return_object() { return Task(state_); }
    std::suspend_never initial_suspend() noexcept { return {}; }
    FinalAwaiter final_suspend() noexcept { return {}; }

    void unhandled_exception() {
      try {
        throw;
      } catch (const std::exception& e) {
        complete(util::Error::make(std::string("uncaught exception: ") +
                                   e.what()));
      } catch (...) {
        complete(util::Error::make("uncaught exception of non-std type"));
      }
    }

    void complete(result_type result) {
      if (!state_->result.has_value()) state_->result.emplace(std::move(result));
    }

    std::shared_ptr<State> take_state() { return std::move(state_); }

   private:
    std::shared_ptr<State> state_;
  };

  /// True once the body ran to completion (normally or via an exception).
  bool done() const { return state_ != nullptr && state_->finished; }

  /// The completed task's result. Precondition: done().
  const result_type& result() const {
    DROUTE_CHECK(done(), "Task::result() before completion");
    // Invariant: complete() fills `result` before `finished` flips, so a
    // done() task always holds a value (opaque to flow-sensitive tidy).
    return *state_->result;  // NOLINT(bugprone-unchecked-optional-access)
  }

  /// Requests cooperative cancellation: the pending awaitable (sim event,
  /// fabric flow, Notify wait) is cancelled and the body unwinds through
  /// its normal failure paths. No-op on a finished task.
  void cancel() {
    if (state_ != nullptr) detail::request_cancel(*state_);
  }

  bool cancel_requested() const {
    return state_ != nullptr && state_->cancel_requested;
  }

  /// Registers `fn(result)` to run when the task finishes (immediately if
  /// it already has). Completion callbacks must not throw: they run inside
  /// the kernel's noexcept finalization path.
  template <typename Fn>
  void on_done(Fn fn) {
    if (done()) {
      fn(*state_->result);  // NOLINT(bugprone-unchecked-optional-access) — done() implies result
      return;
    }
    // Raw pointer on purpose: the waiter is stored inside the state it
    // points at, and FinalAwaiter keeps the state alive while firing.
    State* state = state_.get();
    state_->waiters.push_back(
        // Waiters only fire from FinalAwaiter, after complete() ran.
        [state, fn = std::move(fn)] { fn(*state->result); });  // NOLINT(bugprone-unchecked-optional-access)
  }

  // --- awaiter interface: co_await a (named, lvalue) task from a task ---

  bool await_ready() const& { return done(); }

  template <typename Promise>
  bool await_suspend(std::coroutine_handle<Promise> handle) & {
    if constexpr (std::is_base_of_v<TaskPromiseBase, Promise>) {
      TaskPromiseBase& parent = handle.promise();
      // A cancelled parent forwards the cancellation before parking, so a
      // chain of co_awaits unwinds promptly instead of draining each leg.
      if (parent.cancel_requested()) detail::request_cancel(*state_);
      if (state_->finished) return false;
      state_->waiters.push_back([handle] {
        handle.promise().disarm_canceller();
        handle.resume();
      });
      detail::TaskStateBase* child = state_.get();
      parent.arm_canceller([child] { detail::request_cancel(*child); });
      return true;
    } else {
      if (state_->finished) return false;
      state_->waiters.push_back([handle] { handle.resume(); });
      return true;
    }
  }

  // Resumption implies FinalAwaiter ran, which implies complete() ran.
  result_type await_resume() & { return *state_->result; }  // NOLINT(bugprone-unchecked-optional-access)

 private:
  friend class promise_type;
  explicit Task(std::shared_ptr<State> state) : state_(std::move(state)) {}

  std::shared_ptr<State> state_;
};

/// Awaitable: suspend the task for `dt` simulated seconds. Yields true when
/// the delay elapsed, false when the task was cancelled mid-sleep (the
/// pending sim event is cancelled, not merely abandoned).
class DelayAwaitable {
 public:
  DelayAwaitable(Simulator& simulator, Time dt)
      : simulator_(&simulator), dt_(dt) {}

  bool await_ready() const noexcept { return dt_ <= 0.0; }

  template <typename Promise>
  bool await_suspend(std::coroutine_handle<Promise> handle) {
    if constexpr (std::is_base_of_v<TaskPromiseBase, Promise>) {
      TaskPromiseBase& promise = handle.promise();
      if (promise.cancel_requested()) {
        cancelled_ = true;
        return false;  // already cancelled: fail fast, do not suspend
      }
      event_ = simulator_->schedule_in(dt_, [this, handle] {
        event_ = EventId{};
        handle.promise().disarm_canceller();
        handle.resume();
      });
      promise.arm_canceller([this, handle] {
        simulator_->cancel(event_);
        event_ = EventId{};
        cancelled_ = true;
        handle.resume();
      });
    } else {
      simulator_->schedule_in(dt_, [handle] { handle.resume(); });
    }
    return true;
  }

  bool await_resume() const noexcept { return !cancelled_; }

 private:
  Simulator* simulator_;
  Time dt_;
  EventId event_;
  bool cancelled_ = false;
};

inline DelayAwaitable delay(Simulator& simulator, Time dt) {
  return DelayAwaitable(simulator, dt);
}

/// Awaitable: suspend until absolute simulated time `at` (no-op if past).
inline DelayAwaitable delay_until(Simulator& simulator, Time at) {
  return DelayAwaitable(simulator, at - simulator.now());
}

/// Awaitable that never suspends; yields whether the enclosing task has
/// been asked to cancel. Lets long synchronous stretches bail early:
///   if (co_await sim::cancellation_requested()) co_return ...;
class CancellationProbe {
 public:
  bool await_ready() const noexcept { return false; }
  template <typename Promise>
  bool await_suspend(std::coroutine_handle<Promise> handle) noexcept {
    if constexpr (std::is_base_of_v<TaskPromiseBase, Promise>) {
      requested_ = handle.promise().cancel_requested();
    }
    return false;  // resume immediately
  }
  bool await_resume() const noexcept { return requested_; }

 private:
  bool requested_ = false;
};

inline CancellationProbe cancellation_requested() { return {}; }

/// Single-simulator condition primitive: tasks park on wait() and are all
/// resumed by notify_all() (in the same sim event). Waits are
/// cancellation-aware — a cancelled waiter resumes with false. Always
/// re-check the guarded condition in a loop; a notify is a hint, not a
/// message.
class Notify {
 public:
  class WaitAwaitable {
   public:
    explicit WaitAwaitable(Notify& notify) : notify_(&notify) {}

    bool await_ready() const& noexcept { return false; }

    template <typename Promise>
    bool await_suspend(std::coroutine_handle<Promise> handle) & {
      if constexpr (std::is_base_of_v<TaskPromiseBase, Promise>) {
        TaskPromiseBase& promise = handle.promise();
        if (promise.cancel_requested()) {
          cancelled_ = true;
          return false;
        }
        // One-shot guard shared between the notify path and the cancel
        // path: whichever fires first consumes the resume.
        auto armed = std::make_shared<bool>(true);
        notify_->waiters_.push_back([armed, handle] {
          if (!*armed) return;
          *armed = false;
          handle.promise().disarm_canceller();
          handle.resume();
        });
        promise.arm_canceller([this, armed, handle] {
          if (!*armed) return;
          *armed = false;
          cancelled_ = true;
          handle.resume();
        });
      } else {
        notify_->waiters_.push_back([handle] { handle.resume(); });
      }
      return true;
    }

    /// True when notified, false when the task was cancelled instead.
    bool await_resume() const& noexcept { return !cancelled_; }

   private:
    Notify* notify_;
    bool cancelled_ = false;
  };

  /// Builds a wait awaitable; bind it to a local, then co_await it.
  WaitAwaitable wait() { return WaitAwaitable(*this); }

  /// Resumes every currently-parked waiter, in park order.
  void notify_all() {
    auto waiters = std::move(waiters_);
    waiters_.clear();
    for (auto& waiter : waiters) waiter();
  }

 private:
  std::vector<std::function<void()>> waiters_;
};

// ---------------------------------------------------------------------------
// Combinators. All take value tasks (Task<void> joins are cheap enough to
// co_await directly). Tasks are eager, so the work is already in flight
// when a combinator starts joining.

/// Joins every task; yields their results in input order. Cancelling the
/// all_of task cascades into the not-yet-joined children.
template <typename T>
Task<std::vector<typename Task<T>::result_type>> all_of(
    std::vector<Task<T>> tasks) {
  std::vector<typename Task<T>::result_type> results;
  results.reserve(tasks.size());
  for (auto& task : tasks) {
    results.push_back(co_await task);
  }
  co_return results;
}

/// any_of's yield: which task finished first, and with what.
template <typename T>
struct AnyOutcome {
  std::size_t index;
  typename Task<T>::result_type result;
};

namespace detail {

/// Parks until the first of `tasks` finishes; yields the winner's index.
template <typename T>
class AnyAwaiter {
 public:
  explicit AnyAwaiter(std::vector<Task<T>>* tasks) : tasks_(tasks) {}

  bool await_ready() & {
    for (std::size_t i = 0; i < tasks_->size(); ++i) {
      if ((*tasks_)[i].done()) {
        winner_ = i;
        return true;
      }
    }
    return false;
  }

  template <typename Promise>
  bool await_suspend(std::coroutine_handle<Promise> handle) & {
    if constexpr (std::is_base_of_v<TaskPromiseBase, Promise>) {
      if (handle.promise().cancel_requested()) {
        for (auto& task : *tasks_) task.cancel();
        for (std::size_t i = 0; i < tasks_->size(); ++i) {
          if ((*tasks_)[i].done()) {
            winner_ = i;
            return false;
          }
        }
      }
    }
    auto armed = std::make_shared<bool>(true);
    for (std::size_t i = 0; i < tasks_->size(); ++i) {
      (*tasks_)[i].on_done(
          [this, armed, handle, i](const typename Task<T>::result_type&) {
            if (!*armed) return;
            *armed = false;
            winner_ = i;
            if constexpr (std::is_base_of_v<TaskPromiseBase, Promise>) {
              handle.promise().disarm_canceller();
            }
            handle.resume();
          });
    }
    if constexpr (std::is_base_of_v<TaskPromiseBase, Promise>) {
      std::vector<Task<T>>* tasks = tasks_;
      handle.promise().arm_canceller([tasks] {
        for (auto& task : *tasks) task.cancel();
      });
    }
    return true;
  }

  std::size_t await_resume() const& { return winner_; }

 private:
  std::vector<Task<T>>* tasks_;
  std::size_t winner_ = 0;
};

}  // namespace detail

/// Yields the first task to finish; the losers are cancelled (and unwind
/// cooperatively — they are not awaited, so a loser ignoring cancellation
/// simply finishes detached).
template <typename T>
Task<AnyOutcome<T>> any_of(std::vector<Task<T>> tasks) {
  DROUTE_CHECK(!tasks.empty(), "any_of over an empty task set");
  detail::AnyAwaiter<T> first(&tasks);
  const std::size_t winner = co_await first;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    if (i != winner) tasks[i].cancel();
  }
  co_return AnyOutcome<T>{winner, tasks[winner].result()};
}

/// Runs `task` against a simulated-time budget: if it does not finish
/// within `dt`, it is cancelled and the result is a kErrTimeout error;
/// otherwise the inner result passes through unchanged.
// The Simulator reference is safe to hold across suspension: every Task
// must be joined or cancelled before its Simulator dies (header contract).
template <typename T>
Task<T> with_timeout(Simulator& simulator, Task<T> task, Time dt) {  // NOLINT(cppcoreguidelines-avoid-reference-coroutine-parameters)
  bool timed_out = false;
  EventId timer;
  if (!task.done()) {
    timer = simulator.schedule_in(dt, [&task, &timed_out] {
      timed_out = true;
      task.cancel();
    });
  }
  auto result = co_await task;
  simulator.cancel(timer);
  if (timed_out) {
    co_return util::Error::make(
        "timed out after " + std::to_string(dt) + " s", kErrTimeout);
  }
  co_return result;
}

}  // namespace droute::sim
