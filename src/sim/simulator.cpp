#include "sim/simulator.h"

#include <utility>

#include "check/contract.h"
#include "obs/recorder.h"

namespace droute::sim {

Simulator::Simulator()
    : obs_events_executed_(obs::counter("sim.events_executed_total")),
      obs_queue_depth_(obs::gauge("sim.queue_depth")) {}

EventId Simulator::schedule_at(Time at, Handler handler) {
  DROUTE_CHECK(at >= now_, "event scheduled in the past");
  DROUTE_CHECK(handler != nullptr, "null event handler");
  const std::uint64_t seq = next_seq_++;
  heap_.push(Entry{at, seq, seq});
  handlers_.emplace(seq, std::move(handler));
  return EventId{seq};
}

EventId Simulator::schedule_in(Time delay, Handler handler) {
  DROUTE_CHECK(delay >= 0.0, "negative event delay");
  return schedule_at(now_ + delay, std::move(handler));
}

bool Simulator::cancel(EventId id) {
  if (!id.valid()) return false;
  auto it = handlers_.find(id.value);
  if (it == handlers_.end()) return false;  // already fired or never existed
  handlers_.erase(it);
  cancelled_.insert(id.value);
  return true;
}

void Simulator::skim_cancelled() const {
  while (!heap_.empty()) {
    auto it = cancelled_.find(heap_.top().id);
    if (it == cancelled_.end()) break;
    cancelled_.erase(it);
    heap_.pop();
  }
}

Time Simulator::next_event_time() const {
  skim_cancelled();
  return heap_.empty() ? kTimeInfinity : heap_.top().at;
}

bool Simulator::step() {
  skim_cancelled();
  if (heap_.empty()) return false;
  const Entry entry = heap_.top();
  heap_.pop();
  DROUTE_CHECK(entry.at >= now_, "event queue time went backwards");
  now_ = entry.at;
  if (step_observer_) step_observer_(now_);
  auto it = handlers_.find(entry.id);
  DROUTE_CHECK(it != handlers_.end(), "live event without handler");
  Handler handler = std::move(it->second);
  handlers_.erase(it);
  ++executed_;
  obs::add(obs_events_executed_);
  obs::set(obs_queue_depth_, static_cast<double>(pending()));
  handler();
  return true;
}

void Simulator::run(std::uint64_t max_events) {
  std::uint64_t budget = max_events;
  while (step()) {
    DROUTE_CHECK(budget-- > 0, "event budget exhausted: runaway simulation?");
  }
}

void Simulator::run_until(Time until, std::uint64_t max_events) {
  std::uint64_t budget = max_events;
  while (next_event_time() <= until) {
    step();
    DROUTE_CHECK(budget-- > 0, "event budget exhausted: runaway simulation?");
  }
  if (now_ < until && until < kTimeInfinity) now_ = until;
}

}  // namespace droute::sim
