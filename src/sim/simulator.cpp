#include "sim/simulator.h"

#include <utility>

#include "check/contract.h"
#include "obs/recorder.h"

namespace droute::sim {

Simulator::Simulator()
    : obs_events_executed_(obs::counter("sim.events_executed_total")),
      obs_queue_depth_(obs::gauge("sim.queue_depth")) {}

void Simulator::begin_parallel_section() {
  DROUTE_CHECK(!in_parallel_section_, "parallel sections cannot nest");
  in_parallel_section_ = true;
}

void Simulator::end_parallel_section() { in_parallel_section_ = false; }

EventId Simulator::schedule_at(Time at, Handler handler) {
  DROUTE_CHECK(!in_parallel_section_,
               "schedule inside a parallel section (worker scheduling)");
  DROUTE_CHECK(at >= now_, "event scheduled in the past");
  DROUTE_CHECK(handler != nullptr, "null event handler");
  const std::uint64_t seq = next_seq_++;
  heap_.push(Entry{at, seq, seq});
  handlers_.emplace(seq, std::move(handler));
  return EventId{seq};
}

EventId Simulator::schedule_in(Time delay, Handler handler) {
  DROUTE_CHECK(delay >= 0.0, "negative event delay");
  return schedule_at(now_ + delay, std::move(handler));
}

bool Simulator::cancel(EventId id) {
  // The handler table is the single source of liveness: erasing the handler
  // IS the cancellation. The heap entry is reclaimed lazily when it surfaces.
  if (!id.valid()) return false;
  DROUTE_CHECK(!in_parallel_section_,
               "cancel inside a parallel section (worker scheduling)");
  return handlers_.erase(id.value) > 0;
}

void Simulator::skim_cancelled() const {
  while (!heap_.empty() &&
         handlers_.find(heap_.top().id) == handlers_.end()) {
    heap_.pop();
  }
}

Time Simulator::next_event_time() const {
  skim_cancelled();
  return heap_.empty() ? kTimeInfinity : heap_.top().at;
}

bool Simulator::step() {
  // Skim and handler lookup fused: the first heap entry with a registered
  // handler is the next live event, so one hash probe serves both purposes.
  auto it = handlers_.end();
  Entry entry{};
  for (;;) {
    if (heap_.empty()) return false;
    entry = heap_.top();
    it = handlers_.find(entry.id);
    if (it != handlers_.end()) break;
    heap_.pop();  // cancelled twin: reclaim lazily
  }
  heap_.pop();
  DROUTE_CHECK(entry.at >= now_, "event queue time went backwards");
  now_ = entry.at;
  if (step_observer_) step_observer_(now_);
  Handler handler = std::move(it->second);
  handlers_.erase(it);
  ++executed_;
  obs::add(obs_events_executed_);
  obs::set(obs_queue_depth_, static_cast<double>(pending()));
  handler();
  return true;
}

void Simulator::run(std::uint64_t max_events) {
  std::uint64_t budget = max_events;
  while (step()) {
    DROUTE_CHECK(budget-- > 0, "event budget exhausted: runaway simulation?");
  }
}

void Simulator::run_until(Time until, std::uint64_t max_events) {
  std::uint64_t budget = max_events;
  while (next_event_time() <= until) {
    step();
    DROUTE_CHECK(budget-- > 0, "event budget exhausted: runaway simulation?");
  }
  if (now_ < until && until < kTimeInfinity) now_ = until;
}

}  // namespace droute::sim
