#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>

namespace droute::stats {

double mean(std::span<const double> samples) {
  if (samples.empty()) return 0.0;
  double sum = 0.0;
  for (double s : samples) sum += s;
  return sum / static_cast<double>(samples.size());
}

double sample_stddev(std::span<const double> samples) {
  if (samples.size() < 2) return 0.0;
  const double m = mean(samples);
  double accum = 0.0;
  for (double s : samples) accum += (s - m) * (s - m);
  return std::sqrt(accum / static_cast<double>(samples.size() - 1));
}

double coefficient_of_variation(std::span<const double> samples) {
  const double m = mean(samples);
  if (m == 0.0) return 0.0;
  return sample_stddev(samples) / m;
}

Summary summarize(std::span<const double> samples) {
  Summary summary;
  if (samples.empty()) return summary;
  summary.count = samples.size();
  summary.mean = mean(samples);
  summary.stddev = sample_stddev(samples);
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  summary.min = sorted.front();
  summary.max = sorted.back();
  const std::size_t n = sorted.size();
  summary.median = n % 2 == 1 ? sorted[n / 2]
                              : (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0;
  return summary;
}

Summary keep_last_summary(std::span<const double> samples,
                          std::size_t keep_last) {
  if (samples.size() <= keep_last) return summarize(samples);
  return summarize(samples.subspan(samples.size() - keep_last));
}

}  // namespace droute::stats
