#include "stats/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "check/contract.h"
#include "util/result.h"

namespace droute::stats {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  DROUTE_CHECK(!bounds_.empty(), "histogram needs at least one bound");
  DROUTE_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()),
               "histogram bounds must ascend");
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::add(double value) {
  const auto it = std::upper_bound(bounds_.begin(), bounds_.end(), value);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  samples_.push_back(value);
  sorted_ = false;
  ++total_;
}

double Histogram::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  const double clamped = std::clamp(p, 0.0, 100.0);
  const double rank = clamped / 100.0 * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - std::floor(rank);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

std::string Histogram::render(int width) const {
  std::size_t max_count = 1;
  for (std::size_t count : counts_) max_count = std::max(max_count, count);
  std::ostringstream out;
  double prev = 0.0;
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    char label[48];
    if (i < bounds_.size()) {
      std::snprintf(label, sizeof(label), "[%8.1f, %8.1f)", prev, bounds_[i]);
      prev = bounds_[i];
    } else {
      std::snprintf(label, sizeof(label), "[%8.1f,      inf)", prev);
    }
    const auto bar = static_cast<int>(
        static_cast<double>(counts_[i]) / static_cast<double>(max_count) *
        width);
    out << label << " " << std::string(static_cast<std::size_t>(bar), '#')
        << " " << counts_[i] << "\n";
  }
  return out.str();
}

}  // namespace droute::stats
