// Descriptive statistics for measurement series.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace droute::stats {

struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;   // sample standard deviation (n-1), paper's error bars
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
};

/// Summarizes a series. Empty input yields a zero Summary; a single sample
/// has stddev 0.
Summary summarize(std::span<const double> samples);

/// Sample mean.
double mean(std::span<const double> samples);

/// Sample standard deviation (n-1 denominator); 0 for n < 2.
double sample_stddev(std::span<const double> samples);

/// Coefficient of variation (stddev / mean); 0 when mean is 0.
double coefficient_of_variation(std::span<const double> samples);

/// The paper's protocol: of `samples` (in run order), drop the first
/// (count - keep_last) warm-up runs and summarize the rest. If there are
/// fewer than keep_last samples, all are kept.
Summary keep_last_summary(std::span<const double> samples,
                          std::size_t keep_last);

}  // namespace droute::stats
