#include "stats/overlap.h"

#include <cmath>

namespace droute::stats {

bool error_bars_overlap(const Interval& a, const Interval& b) {
  return a.low() <= b.high() && b.low() <= a.high();
}

bool clearly_faster(const Interval& candidate, const Interval& baseline) {
  return candidate.high() < baseline.low();
}

namespace {

// The shared verdict core: callers supply the direction-independent facts
// (is the candidate's mean strictly better, do the bars overlap, and the
// relative gain), the options compose them into the paper's decision.
SignificanceDecision compose_verdict(bool candidate_mean_better, bool overlap,
                                     double gain,
                                     const SignificanceOptions& options) {
  SignificanceDecision decision;
  decision.overlap = overlap;
  decision.gain = gain;
  if (!candidate_mean_better) {
    decision.significance = Significance::kBaselineBetter;
    return decision;
  }
  decision.significance = overlap ? Significance::kIndistinguishable
                                  : Significance::kCandidateBetter;
  decision.choose_candidate =
      !(overlap && options.prefer_baseline_on_overlap) &&
      gain >= options.min_gain;
  return decision;
}

}  // namespace

SignificanceDecision judge_lower_better(const Interval& candidate,
                                        const Interval& baseline,
                                        const SignificanceOptions& options) {
  const double gain = baseline.mean != 0.0
                          ? (baseline.mean - candidate.mean) / baseline.mean
                          : 0.0;
  return compose_verdict(candidate.mean < baseline.mean,
                         error_bars_overlap(candidate, baseline), gain,
                         options);
}

SignificanceDecision judge_higher_better(const Interval& candidate,
                                         const Interval& baseline,
                                         const SignificanceOptions& options) {
  const double gain = baseline.mean != 0.0
                          ? (candidate.mean - baseline.mean) / baseline.mean
                          : 0.0;
  return compose_verdict(candidate.mean > baseline.mean,
                         error_bars_overlap(candidate, baseline), gain,
                         options);
}

double welch_t(const Interval& a, std::size_t n_a, const Interval& b,
               std::size_t n_b) {
  if (n_a == 0 || n_b == 0) return 0.0;
  const double va = a.stddev * a.stddev / static_cast<double>(n_a);
  const double vb = b.stddev * b.stddev / static_cast<double>(n_b);
  const double denom = std::sqrt(va + vb);
  if (denom == 0.0) return 0.0;
  return (a.mean - b.mean) / denom;
}

double welch_df(const Interval& a, std::size_t n_a, const Interval& b,
                std::size_t n_b) {
  if (n_a < 2 || n_b < 2) return 0.0;
  const double va = a.stddev * a.stddev / static_cast<double>(n_a);
  const double vb = b.stddev * b.stddev / static_cast<double>(n_b);
  const double numer = (va + vb) * (va + vb);
  const double denom = va * va / static_cast<double>(n_a - 1) +
                       vb * vb / static_cast<double>(n_b - 1);
  if (denom == 0.0) return 0.0;
  return numer / denom;
}

}  // namespace droute::stats
