#include "stats/overlap.h"

#include <cmath>

namespace droute::stats {

bool error_bars_overlap(const Interval& a, const Interval& b) {
  return a.low() <= b.high() && b.low() <= a.high();
}

bool clearly_faster(const Interval& candidate, const Interval& baseline) {
  return candidate.high() < baseline.low();
}

double welch_t(const Interval& a, std::size_t n_a, const Interval& b,
               std::size_t n_b) {
  if (n_a == 0 || n_b == 0) return 0.0;
  const double va = a.stddev * a.stddev / static_cast<double>(n_a);
  const double vb = b.stddev * b.stddev / static_cast<double>(n_b);
  const double denom = std::sqrt(va + vb);
  if (denom == 0.0) return 0.0;
  return (a.mean - b.mean) / denom;
}

double welch_df(const Interval& a, std::size_t n_a, const Interval& b,
                std::size_t n_b) {
  if (n_a < 2 || n_b < 2) return 0.0;
  const double va = a.stddev * a.stddev / static_cast<double>(n_a);
  const double vb = b.stddev * b.stddev / static_cast<double>(n_b);
  const double numer = (va + vb) * (va + vb);
  const double denom = va * va / static_cast<double>(n_a - 1) +
                       vb * vb / static_cast<double>(n_b - 1);
  if (denom == 0.0) return 0.0;
  return numer / denom;
}

}  // namespace droute::stats
