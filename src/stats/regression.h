// Ordinary least squares for the affine route-cost model
//     time = overhead + bytes / rate
// fitted from probe observations (DetourPlanner). Exposes goodness-of-fit
// so callers can detect routes whose cost is *not* affine in size — e.g.
// Purdue's congested transit, where time grows superlinearly under load
// (Table III's nonmonotonic column).
#pragma once

#include <cstddef>
#include <span>

namespace droute::stats {

struct LinearFit {
  double slope = 0.0;       // seconds per byte
  double intercept = 0.0;   // seconds
  double r_squared = 0.0;   // 1 = perfect affine fit
  std::size_t points = 0;

  double predict(double x) const { return intercept + slope * x; }
};

/// OLS over (x, y) pairs. Requires xs.size() == ys.size(). With fewer than
/// two points, or zero x-variance, returns a flat fit through the mean.
LinearFit fit_linear(std::span<const double> xs, std::span<const double> ys);

}  // namespace droute::stats
