#include "stats/regression.h"

#include "check/contract.h"
#include "stats/descriptive.h"
#include "util/result.h"

namespace droute::stats {

LinearFit fit_linear(std::span<const double> xs, std::span<const double> ys) {
  DROUTE_CHECK(xs.size() == ys.size(), "fit_linear: size mismatch");
  LinearFit fit;
  fit.points = xs.size();
  if (xs.empty()) return fit;

  const double mean_x = mean(xs);
  const double mean_y = mean(ys);
  double sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mean_x;
    const double dy = ys[i] - mean_y;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx == 0.0) {
    fit.intercept = mean_y;
    return fit;
  }
  fit.slope = sxy / sxx;
  fit.intercept = mean_y - fit.slope * mean_x;
  fit.r_squared = syy == 0.0 ? 1.0 : (sxy * sxy) / (sxx * syy);
  return fit;
}

}  // namespace droute::stats
