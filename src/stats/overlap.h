// Error-bar overlap analysis — the paper's significance heuristic
// (Sec III-B, Table IV): two routes whose mean +/- 1 stddev intervals
// overlap are considered statistically indistinguishable, in which case the
// conservative choice is the direct route ("unsure benefits of the detours").
// Welch's t statistic is provided as a sharper extension.
#pragma once

#include <cstddef>

namespace droute::stats {

struct Interval {
  double mean = 0.0;
  double stddev = 0.0;

  double low() const { return mean - stddev; }
  double high() const { return mean + stddev; }
};

/// True when the two +/- 1 stddev error bars overlap (the paper's test).
bool error_bars_overlap(const Interval& a, const Interval& b);

/// True when `candidate` is faster than `baseline` by more than the overlap
/// criterion allows: candidate.high() < baseline.low().
bool clearly_faster(const Interval& candidate, const Interval& baseline);

/// Welch's t statistic for unequal-variance comparison of two means.
double welch_t(const Interval& a, std::size_t n_a, const Interval& b,
               std::size_t n_b);

/// Welch–Satterthwaite degrees of freedom.
double welch_df(const Interval& a, std::size_t n_a, const Interval& b,
                std::size_t n_b);

}  // namespace droute::stats
