// Error-bar overlap analysis — the paper's significance heuristic
// (Sec III-B, Table IV): two routes whose mean +/- 1 stddev intervals
// overlap are considered statistically indistinguishable, in which case the
// conservative choice is the direct route ("unsure benefits of the detours").
// Welch's t statistic is provided as a sharper extension.
#pragma once

#include <cstddef>
#include <cstdint>

namespace droute::stats {

struct Interval {
  double mean = 0.0;
  double stddev = 0.0;

  double low() const { return mean - stddev; }
  double high() const { return mean + stddev; }
};

/// True when the two +/- 1 stddev error bars overlap (the paper's test).
bool error_bars_overlap(const Interval& a, const Interval& b);

/// True when `candidate` is faster than `baseline` by more than the overlap
/// criterion allows: candidate.high() < baseline.low().
bool clearly_faster(const Interval& candidate, const Interval& baseline);

/// How a candidate route compares to the direct baseline under the paper's
/// Sec III-B heuristic (the one shared decision both the offline
/// core::RouteAdvisor and the online ctrl::PathEstimator apply).
enum class Significance : std::uint8_t {
  kCandidateBetter,     // error bars clear of each other, candidate wins
  kIndistinguishable,   // bars overlap: "unsure benefits of the detours"
  kBaselineBetter,      // baseline mean is at least as good
};

struct SignificanceOptions {
  /// The paper's conservatism: an overlapping candidate loses to the
  /// baseline even when its mean is better.
  bool prefer_baseline_on_overlap = true;
  /// Minimum relative mean improvement the candidate must show over the
  /// baseline to be chosen even when clear of overlap (0 = any gain).
  double min_gain = 0.0;
};

struct SignificanceDecision {
  Significance significance = Significance::kBaselineBetter;
  bool choose_candidate = false;  // the composed verdict, options applied
  bool overlap = false;           // raw error-bar overlap
  double gain = 0.0;              // relative mean improvement of candidate
};

/// Judges `candidate` against `baseline` where LOWER means are better
/// (transfer times). Encodes: pick the better mean, but fall back to the
/// baseline when the +/- 1 stddev bars overlap (if configured) or the gain
/// is below the threshold.
SignificanceDecision judge_lower_better(const Interval& candidate,
                                        const Interval& baseline,
                                        const SignificanceOptions& options = {});

/// Same decision where HIGHER means are better (throughputs); the gain is
/// the candidate's relative improvement over the baseline mean.
SignificanceDecision judge_higher_better(
    const Interval& candidate, const Interval& baseline,
    const SignificanceOptions& options = {});

/// Welch's t statistic for unequal-variance comparison of two means.
double welch_t(const Interval& a, std::size_t n_a, const Interval& b,
               std::size_t n_b);

/// Welch–Satterthwaite degrees of freedom.
double welch_df(const Interval& a, std::size_t n_a, const Interval& b,
                std::size_t n_b);

}  // namespace droute::stats
