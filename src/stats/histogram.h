// Fixed-bound histogram with percentile estimation and ASCII rendering,
// used by the workload benches to report transfer-time distributions.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace droute::stats {

class Histogram {
 public:
  /// `bounds` are the upper edges of each bin (ascending); values above the
  /// last bound land in an implicit overflow bin.
  explicit Histogram(std::vector<double> bounds);

  void add(double value);

  std::size_t total() const { return total_; }
  std::size_t bin_count(std::size_t bin) const { return counts_.at(bin); }
  std::size_t overflow() const { return counts_.back(); }

  /// Exact percentile over all recorded samples (kept, not binned).
  /// p in [0, 100]; returns 0 when empty.
  double percentile(double p) const;

  /// Bar-chart rendering, one line per bin.
  std::string render(int width = 50) const;

 private:
  std::vector<double> bounds_;
  std::vector<std::size_t> counts_;  // bounds_.size() + 1 (overflow)
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
  std::size_t total_ = 0;
};

}  // namespace droute::stats
