#include "check/contract.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace droute::check {

namespace {
std::atomic<FailureHandler> g_handler{nullptr};
std::atomic<bool> g_debug_checks{true};
std::once_flag g_debug_env_once;

void init_debug_checks_from_env() {
  if (const char* env = std::getenv("DROUTE_DEBUG_CHECKS")) {
    const bool off = std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0;
    g_debug_checks.store(!off);
  }
}
}  // namespace

std::string Violation::to_string() const {
  std::string out = "DROUTE_CHECK failed: ";
  if (!message.empty()) {
    out += message;
    out += ' ';
  }
  out += '[';
  out += condition;
  out += "] at ";
  out += file;
  out += ':';
  out += std::to_string(line);
  return out;
}

FailureHandler set_failure_handler(FailureHandler handler) {
  return g_handler.exchange(handler);
}

FailureHandler failure_handler() { return g_handler.load(); }

bool debug_checks_enabled() {
  std::call_once(g_debug_env_once, init_debug_checks_from_env);
  return g_debug_checks.load();
}

void set_debug_checks(bool enabled) {
  std::call_once(g_debug_env_once, init_debug_checks_from_env);
  g_debug_checks.store(enabled);
}

void fail(const char* file, int line, const char* condition,
          std::string message) {
  Violation violation{file, line, condition, std::move(message)};
  if (FailureHandler handler = g_handler.load()) {
    handler(violation);
  }
  throw CheckError(violation.to_string());
}

}  // namespace droute::check
