// Runtime auditor for sim::Simulator invariants.
//
// Two classes of invariant:
//   * the clock never moves backwards while events fire (checked live via
//     the simulator's step observer),
//   * a drained simulation leaks nothing: no pending events, no cancelled
//     backlog waiting in the heap (checked at quiescence).
//
// Usage in tests:
//   sim::Simulator simulator;
//   check::SimAuditor auditor(&simulator);   // installs the observer
//   ... schedule + run ...
//   ASSERT_TRUE(auditor.audit_quiescent().ok());
//
// The auditor raises clock violations through DROUTE_CHECK (they indicate a
// kernel bug, never bad input) and reports quiescence problems as a Status
// so tests can assert on the exact failure.
#pragma once

#include <cstdint>

#include "sim/simulator.h"
#include "util/result.h"

namespace droute::check {

class SimAuditor {
 public:
  /// Installs a step observer on `simulator` (replacing any existing one).
  /// The simulator must outlive the auditor.
  explicit SimAuditor(sim::Simulator* simulator);
  ~SimAuditor();

  SimAuditor(const SimAuditor&) = delete;
  SimAuditor& operator=(const SimAuditor&) = delete;

  /// Events observed firing since construction.
  std::uint64_t observed_events() const { return observed_; }

  /// Latest event time observed (-infinity before any event fires).
  sim::Time last_event_time() const { return last_time_; }

  /// Checks the simulator is fully drained: no pending events (a pending
  /// event after run() means some component leaked a timer) and no
  /// cancelled entries still occupying the heap.
  [[nodiscard]] util::Status audit_quiescent() const;

 private:
  void on_step(sim::Time at);

  sim::Simulator* simulator_;
  std::uint64_t observed_ = 0;
  sim::Time last_time_;
};

}  // namespace droute::check
