// Gao–Rexford valley-free validator.
//
// An AS path is valley-free when it decomposes as
//     zero or more "up" edges (customer -> provider),
//     at most one "flat" edge (peer -> peer),
//     zero or more "down" edges (provider -> customer).
// Anything else implies some AS carried transit it is not paid for — the
// export rules in net::routing can never select such a path, so a violation
// reported here is a routing bug (or an intentionally broken fixture).
//
// The node-level overload collapses a concrete net::Route to its AS path
// first (consecutive same-AS nodes fold into one hop). Caveat: routes
// shaped by an EgressOverride are exempt — the paper's central artifact is
// precisely an operator exception that pushes traffic onto a second peer
// edge (campus -> backbone -> PacificWave -> cloud), which Gao–Rexford
// would never select. Audit only override-free routes with validate_route;
// BGP-selected AS paths (RouteTable::as_path) must always validate.
#pragma once

#include <vector>

#include "net/routing.h"
#include "net/topology.h"
#include "util/result.h"

namespace droute::check {

/// Collapses a node-level route to its AS-level path (consecutive nodes in
/// the same AS become a single entry; result is never empty for a valid
/// route).
std::vector<net::AsId> as_path_of_route(const net::Topology& topo,
                                        const net::Route& route);

/// Validates an AS path against the topology's declared relationships.
/// Fails on: an AS hop with no declared relationship, a repeated AS
/// (routing loop), a second peer edge, or any up/flat edge after the path
/// started descending (the "valley").
[[nodiscard]] util::Status validate_as_path(
    const net::Topology& topo, const std::vector<net::AsId>& path);

/// Collapses `route` to AS level and validates it. Also rejects malformed
/// routes (empty, node/link count mismatch, links not connecting their
/// declared endpoints).
[[nodiscard]] util::Status validate_route(const net::Topology& topo,
                                          const net::Route& route);

}  // namespace droute::check
