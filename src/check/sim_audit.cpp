#include "check/sim_audit.h"

#include <limits>
#include <string>

#include "check/contract.h"

namespace droute::check {

SimAuditor::SimAuditor(sim::Simulator* simulator)
    : simulator_(simulator),
      last_time_(-std::numeric_limits<sim::Time>::infinity()) {
  DROUTE_CHECK(simulator_ != nullptr, "SimAuditor: null simulator");
  simulator_->set_step_observer([this](sim::Time at) { on_step(at); });
}

SimAuditor::~SimAuditor() {
  simulator_->set_step_observer(nullptr);
}

void SimAuditor::on_step(sim::Time at) {
  DROUTE_CHECK(at >= last_time_,
               "simulator clock moved backwards: ", at, " after ", last_time_);
  DROUTE_CHECK(sim::time_eq(at, simulator_->now()),
               "observed event time diverges from simulator clock");
  last_time_ = at;
  ++observed_;
}

util::Status SimAuditor::audit_quiescent() const {
  if (simulator_->pending() != 0) {
    return util::Status::failure(
        "simulator leaked " + std::to_string(simulator_->pending()) +
        " pending event(s) after drain");
  }
  if (simulator_->cancelled_backlog() != 0) {
    return util::Status::failure(
        "simulator retains " + std::to_string(simulator_->cancelled_backlog()) +
        " cancelled heap entr(y/ies) after drain");
  }
  return util::Status::success();
}

}  // namespace droute::check
