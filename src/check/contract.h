// Contract macros and failure plumbing for the whole library.
//
// DROUTE_CHECK(cond, parts...)   — hard invariant; survives NDEBUG builds.
//     Guards conservation laws and preconditions whose silent violation
//     would invalidate every downstream result. All extra arguments are
//     streamed into the failure message:
//         DROUTE_CHECK(cap > 0.0, "flow cap must be positive, got ", cap);
// DROUTE_DCHECK(cond, parts...)  — debug-only check; compiled out when
//     NDEBUG is set unless DROUTE_ENABLE_DCHECKS=1 is defined. Use for
//     expensive audits on hot paths.
//
// A failed check builds a check::Violation and hands it to the installed
// failure handler (see set_failure_handler). The handler may record, log or
// throw; if it returns, a check::CheckError (derived from std::logic_error,
// which older call sites assert on) is thrown so no check ever falls
// through. Tests install a scoped handler to assert on violations without
// grepping exception strings.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace droute::check {

/// Thrown when a contract check fails (unless a custom handler intervenes).
/// Derives std::logic_error: pre-existing tests that expect logic_error on a
/// violated precondition keep working.
class CheckError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Everything known about one failed check.
struct Violation {
  const char* file = "";
  int line = 0;
  const char* condition = "";
  std::string message;

  std::string to_string() const;
};

/// Observes violations before the throw. Must be noexcept-callable or throw
/// its own exception type; returning normally lets the default CheckError
/// throw proceed.
using FailureHandler = void (*)(const Violation&);

/// Installs `handler` (nullptr restores default). Returns the previous one.
FailureHandler set_failure_handler(FailureHandler handler);
FailureHandler failure_handler();

/// RAII handler swap for tests.
class ScopedFailureHandler {
 public:
  explicit ScopedFailureHandler(FailureHandler handler)
      : previous_(set_failure_handler(handler)) {}
  ~ScopedFailureHandler() { set_failure_handler(previous_); }
  ScopedFailureHandler(const ScopedFailureHandler&) = delete;
  ScopedFailureHandler& operator=(const ScopedFailureHandler&) = delete;

 private:
  FailureHandler previous_;
};

/// Runtime switch for the optional invariant auditors (sim_audit,
/// fabric_audit, valley_free wiring inside tests). Defaults to on; the
/// DROUTE_DEBUG_CHECKS environment variable ("0"/"off" disables, "1"/"on"
/// enables) provides an out-of-band override for profiling runs.
bool debug_checks_enabled();
void set_debug_checks(bool enabled);

/// Reports a violation to the handler, then throws CheckError.
[[noreturn]] void fail(const char* file, int line, const char* condition,
                       std::string message);

namespace detail {
template <typename... Parts>
std::string format_message(Parts&&... parts) {
  if constexpr (sizeof...(Parts) == 0) {
    return std::string();
  } else {
    std::ostringstream stream;
    (stream << ... << parts);
    return stream.str();
  }
}
}  // namespace detail

}  // namespace droute::check

#define DROUTE_CHECK(cond, ...)                                     \
  do {                                                              \
    if (!(cond)) {                                                  \
      ::droute::check::fail(                                        \
          __FILE__, __LINE__, #cond,                                \
          ::droute::check::detail::format_message(__VA_ARGS__));    \
    }                                                               \
  } while (false)

#ifndef DROUTE_ENABLE_DCHECKS
#ifdef NDEBUG
#define DROUTE_ENABLE_DCHECKS 0
#else
#define DROUTE_ENABLE_DCHECKS 1
#endif
#endif

#if DROUTE_ENABLE_DCHECKS
#define DROUTE_DCHECK(cond, ...) DROUTE_CHECK(cond __VA_OPT__(, ) __VA_ARGS__)
#else
// Keeps operands odr-used (no unused-variable warnings) without evaluating.
#define DROUTE_DCHECK(cond, ...)                          \
  do {                                                    \
    if (false) {                                          \
      DROUTE_CHECK(cond __VA_OPT__(, ) __VA_ARGS__);      \
    }                                                     \
  } while (false)
#endif
