#include "check/fabric_audit.h"

#include <sstream>

namespace droute::check {

namespace {
std::string describe_link(const net::Fabric::LinkLoad& load) {
  std::ostringstream out;
  out << "link " << load.link << " (" << load.allocated_mbps << " of "
      << load.capacity_mbps << " Mbps across " << load.flows << " flow(s))";
  return out.str();
}
}  // namespace

util::Status audit_link_loads(const std::vector<net::Fabric::LinkLoad>& loads,
                              double relative_slack) {
  for (const net::Fabric::LinkLoad& load : loads) {
    if (load.link == net::kInvalidLink) {
      return util::Status::failure("link load entry with invalid link id");
    }
    if (load.allocated_mbps < 0.0) {
      return util::Status::failure("negative allocation on " +
                                   describe_link(load));
    }
    if (load.capacity_mbps <= 0.0) {
      return util::Status::failure("non-positive capacity on " +
                                   describe_link(load));
    }
    if (load.flows <= 0) {
      return util::Status::failure("loaded link carries no flows: " +
                                   describe_link(load));
    }
    const double limit = load.capacity_mbps * (1.0 + relative_slack);
    if (load.allocated_mbps > limit) {
      return util::Status::failure("capacity exceeded on " +
                                   describe_link(load));
    }
  }
  return util::Status::success();
}

util::Status audit_flow_conservation(const net::Fabric& fabric) {
  // Half a byte per flow absorbs the fluid-model completion tolerance.
  const double slack =
      0.5 * static_cast<double>(fabric.active_flow_count() + 1);
  const double submitted = static_cast<double>(fabric.submitted_bytes());
  if (fabric.moved_bytes() > submitted + slack) {
    std::ostringstream out;
    out << "flow conservation violated: moved " << fabric.moved_bytes()
        << " bytes but only " << submitted << " were submitted";
    return util::Status::failure(out.str());
  }
  if (static_cast<double>(fabric.delivered_bytes()) > submitted) {
    std::ostringstream out;
    out << "delivered " << fabric.delivered_bytes()
        << " bytes exceed submitted " << submitted;
    return util::Status::failure(out.str());
  }
  return util::Status::success();
}

util::Status audit_fabric(const net::Fabric& fabric, double relative_slack) {
  if (auto status = audit_link_loads(fabric.link_loads(), relative_slack);
      !status.ok()) {
    return status;
  }
  return audit_flow_conservation(fabric);
}

}  // namespace droute::check
