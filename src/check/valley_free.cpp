#include "check/valley_free.h"

#include <set>
#include <string>

namespace droute::check {

namespace {

std::string as_name(const net::Topology& topo, net::AsId as) {
  return topo.as_info(as).name + " (AS " + std::to_string(as) + ")";
}

}  // namespace

std::vector<net::AsId> as_path_of_route(const net::Topology& topo,
                                        const net::Route& route) {
  std::vector<net::AsId> path;
  for (net::NodeId node : route.nodes) {
    const net::AsId as = topo.node(node).as_id;
    if (path.empty() || path.back() != as) path.push_back(as);
  }
  return path;
}

util::Status validate_as_path(const net::Topology& topo,
                              const std::vector<net::AsId>& path) {
  if (path.empty()) {
    return util::Status::failure("empty AS path");
  }

  std::set<net::AsId> seen;
  for (net::AsId as : path) {
    if (!seen.insert(as).second) {
      return util::Status::failure("AS path revisits " + as_name(topo, as) +
                                   " (routing loop)");
    }
  }

  // Walk the edge sequence with the Gao–Rexford state machine: while
  // `climbing` any edge class is legal; a flat or down edge ends the climb,
  // after which only down edges may follow.
  bool climbing = true;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const net::AsId from = path[i];
    const net::AsId to = path[i + 1];
    const auto rel = topo.relation(from, to);
    if (!rel.has_value()) {
      return util::Status::failure("AS path crosses undeclared adjacency " +
                                   as_name(topo, from) + " -> " +
                                   as_name(topo, to));
    }
    switch (*rel) {
      case net::AsRelation::kProvider:
        // Up edge: `to` is `from`'s provider. Only legal while climbing.
        if (!climbing) {
          return util::Status::failure(
              "valley: up edge " + as_name(topo, from) + " -> " +
              as_name(topo, to) + " after the path started descending");
        }
        break;
      case net::AsRelation::kPeer:
        // Flat edge: ends the climb; a second one would be peer->peer
        // transit, which no AS exports.
        if (!climbing) {
          return util::Status::failure(
              "valley: peer edge " + as_name(topo, from) + " -> " +
              as_name(topo, to) + " after the path started descending");
        }
        climbing = false;
        break;
      case net::AsRelation::kCustomer:
        // Down edge: from here on the path may only descend.
        climbing = false;
        break;
    }
  }
  return util::Status::success();
}

util::Status validate_route(const net::Topology& topo,
                            const net::Route& route) {
  if (!route.valid()) {
    return util::Status::failure(
        "malformed route: node/link counts inconsistent");
  }
  for (std::size_t i = 0; i < route.links.size(); ++i) {
    const net::Link& link = topo.link(route.links[i]);
    if (link.src != route.nodes[i] || link.dst != route.nodes[i + 1]) {
      return util::Status::failure(
          "route link " + std::to_string(link.id) +
          " does not connect its declared endpoints");
    }
  }
  return validate_as_path(topo, as_path_of_route(topo, route));
}

}  // namespace droute::check
