// Runtime auditor for net::Fabric conservation invariants.
//
// The fabric is an event-driven fluid simulation; its correctness reduces to
// two conservation laws that must hold at every instant:
//   * capacity: the sum of allocated flow rates on any link never exceeds
//     the link's capacity (max-min fairness shares, it never oversubscribes),
//   * flow conservation: bytes only move while a flow is active, so the
//     total moved never exceeds the total submitted, and delivered bytes
//     (completed payloads) never exceed submitted bytes either.
//
// Auditors return util::Status so tests can assert on the exact violation;
// `audit_fabric` composes both laws against a live fabric. The link-load
// overload takes a plain snapshot so tests can inject a corrupted state and
// prove the auditor rejects it.
#pragma once

#include <vector>

#include "net/fabric.h"
#include "util/result.h"

namespace droute::check {

/// Relative headroom tolerated on a link before the audit fails. Water-
/// filling accumulates one rounding step per freeze round; 1e-6 relative
/// slack absorbs that without masking real oversubscription.
inline constexpr double kCapacitySlack = 1e-6;

/// Checks every link-load snapshot entry for: non-negative allocation, a
/// positive capacity, at least one flow on any loaded link, and allocation
/// within capacity (plus relative slack).
[[nodiscard]]
util::Status audit_link_loads(const std::vector<net::Fabric::LinkLoad>& loads,
                              double relative_slack = kCapacitySlack);

/// Checks the byte ledger of a live fabric: moved <= submitted and
/// delivered <= submitted (both with sub-byte fluid rounding slack).
[[nodiscard]] util::Status audit_flow_conservation(const net::Fabric& fabric);

/// Full audit of a live fabric: link capacities + byte conservation.
[[nodiscard]] util::Status audit_fabric(
    const net::Fabric& fabric, double relative_slack = kCapacitySlack);

}  // namespace droute::check
