// Units and conversions used throughout droute.
//
// Conventions (documented once, applied everywhere):
//   * time      : double seconds (simulated time)
//   * data size : std::uint64_t bytes
//   * data rate : double megabits per second (Mbps) at the API surface;
//                 bytes-per-second doubles inside tight loops.
//
// The decimal/binary distinction matters for fidelity: the paper creates
// files with `dd`, i.e. binary MiB-sized blocks, but reports "MB".  We follow
// the paper and treat its "N MB" as N * 1e6 bytes, while provider chunk sizes
// (8 MiB, 10 MiB fragments) are binary as in the real APIs.
#pragma once

#include <cstdint>

namespace droute::util {

inline constexpr std::uint64_t kKB = 1000ull;
inline constexpr std::uint64_t kMB = 1000ull * 1000ull;
inline constexpr std::uint64_t kGB = 1000ull * 1000ull * 1000ull;

inline constexpr std::uint64_t kKiB = 1024ull;
inline constexpr std::uint64_t kMiB = 1024ull * 1024ull;
inline constexpr std::uint64_t kGiB = 1024ull * 1024ull * 1024ull;

/// Megabits/second -> bytes/second.
constexpr double mbps_to_bytes_per_sec(double mbps) { return mbps * 1e6 / 8.0; }

/// Bytes/second -> megabits/second.
constexpr double bytes_per_sec_to_mbps(double bps) { return bps * 8.0 / 1e6; }

/// Seconds to transfer `bytes` at `mbps`, ignoring all protocol overhead.
constexpr double seconds_at_rate(std::uint64_t bytes, double mbps) {
  return static_cast<double>(bytes) / mbps_to_bytes_per_sec(mbps);
}

/// Milliseconds -> seconds.
constexpr double ms(double milliseconds) { return milliseconds / 1e3; }

/// Microseconds -> seconds.
constexpr double us(double microseconds) { return microseconds / 1e6; }

}  // namespace droute::util
