// Tiny leveled logger. Thread-safe, writes to stderr, off by default above
// warning so tests and benches stay quiet unless DROUTE_LOG=debug is set.
#pragma once

#include <sstream>
#include <string>

namespace droute::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are dropped.
LogLevel log_threshold();
void set_log_threshold(LogLevel level);

/// Parse "debug"/"info"/"warn"/"error"/"off"; unknown -> kWarn.
LogLevel parse_log_level(const std::string& name);

namespace detail {
void log_write(LogLevel level, const std::string& message);
}

/// Stream-style log statement: DROUTE_LOG(kInfo) << "flow " << id << " done";
#define DROUTE_LOG(level_suffix)                                            \
  for (bool once = ::droute::util::log_threshold() <=                       \
                   ::droute::util::LogLevel::level_suffix;                  \
       once; once = false)                                                  \
  ::droute::util::detail::LogLine(::droute::util::LogLevel::level_suffix)

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_write(level_, stream_.str()); }
  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace droute::util
