// Minimal Result<T> / Status types (std::expected is C++23; we target C++20).
//
// Error handling policy for the library:
//   * programming errors (violated preconditions)      -> DROUTE_CHECK /
//     DROUTE_DCHECK (see check/contract.h, where the macros live)
//   * recoverable runtime failures (bad input, refusal) -> Result<T> / Status
//   * constructor failures                              -> factory functions
//     returning Result<T>, never throwing constructors.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace droute::util {

/// A lightweight error: a message plus an optional machine-readable code.
struct Error {
  std::string message;
  int code = 0;

  static Error make(std::string msg, int code = 0) {
    return Error{std::move(msg), code};
  }
};

/// Result of an operation that produces a T or fails with an Error.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : state_(std::move(value)) {}            // NOLINT(google-explicit-constructor)
  Result(Error error) : state_(std::move(error)) {}        // NOLINT(google-explicit-constructor)

  bool ok() const { return std::holds_alternative<T>(state_); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    assert(ok() && "Result::value() on error");
    return std::get<T>(state_);
  }
  T& value() & {
    assert(ok() && "Result::value() on error");
    return std::get<T>(state_);
  }
  T&& value() && {
    assert(ok() && "Result::value() on error");
    return std::get<T>(std::move(state_));
  }

  const Error& error() const {
    assert(!ok() && "Result::error() on success");
    return std::get<Error>(state_);
  }

  /// value() or `fallback` when failed.
  T value_or(T fallback) const {
    return ok() ? std::get<T>(state_) : std::move(fallback);
  }

 private:
  std::variant<T, Error> state_;
};

/// Result of an operation with no payload.
class [[nodiscard]] Status {
 public:
  Status() = default;                                       // success
  Status(Error error) : error_(std::move(error)) {}         // NOLINT(google-explicit-constructor)

  bool ok() const { return !error_.has_value(); }
  explicit operator bool() const { return ok(); }

  const Error& error() const {
    assert(!ok() && "Status::error() on success");
    return *error_;
  }

  [[nodiscard]] static Status success() { return Status{}; }
  static Status failure(std::string msg, int code = 0) {
    return Status{Error{std::move(msg), code}};
  }

 private:
  std::optional<Error> error_;
};

}  // namespace droute::util
