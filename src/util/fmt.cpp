#include "util/fmt.h"

#include <array>
#include <cstdio>

namespace droute::util {

std::string format_double(double value) {
  // %.17g survives a strtod round trip exactly; reformatting the parsed
  // value reproduces the same bytes, which the corpus format relies on.
  std::array<char, 64> buffer{};
  std::snprintf(buffer.data(), buffer.size(), "%.17g", value);
  return buffer.data();
}

}  // namespace droute::util
