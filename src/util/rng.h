// Deterministic, platform-independent random number generation.
//
// Simulation results must be bit-identical across runs and platforms, so we
// implement our own generators (SplitMix64 for seeding, xoshiro256** for the
// stream) instead of relying on libstdc++ distribution internals, which the
// standard leaves implementation-defined.
#pragma once

#include <array>
#include <cstdint>

namespace droute::util {

/// SplitMix64: used to expand a single 64-bit seed into generator state.
/// Reference: Vigna, https://prng.di.unimi.it/splitmix64.c (public domain).
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, high-quality 64-bit PRNG.
/// Reference: Blackman & Vigna, https://prng.di.unimi.it/xoshiro256starstar.c.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9d2c5680u);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Exponential with the given mean (> 0).
  double exponential(double mean);

  /// Standard normal via Box-Muller (deterministic, no cached spare).
  double normal(double mean, double stddev);

  /// Bounded Pareto on [lo, hi] with shape alpha — heavy-tailed flow sizes.
  double pareto(double alpha, double lo, double hi);

  /// Log-normal parameterized by the mean/cv of the *resulting* distribution,
  /// which is the natural way to specify noisy WAN transfer-time multipliers.
  double lognormal_mean_cv(double mean, double cv);

  /// Bernoulli trial.
  bool chance(double p);

  /// Derive an independent child stream (e.g. one per simulation run).
  /// Consumes one draw from this stream, so later forks differ.
  Rng fork(std::uint64_t salt);

  /// Derive an independent child stream keyed by `key` WITHOUT advancing
  /// this generator: the child is SplitMix64-expanded from a hash of the
  /// current state and the key. Two generators split from the same state
  /// with different keys are independent of each other and of every
  /// subsequent parent draw — so a scenario can hand substreams to its
  /// topology, workload, and chaos generators and adding a new generator
  /// (a new key) never perturbs the existing ones' sequences.
  Rng split(std::uint64_t key) const;

 private:
  std::array<std::uint64_t, 4> s_;
};

}  // namespace droute::util
