#include "util/thread_pool.h"

#include <algorithm>
#include <exception>
#include <limits>

namespace droute::util {

namespace {
// Worker identity for deque routing and for detecting re-entrant
// parallel_for calls (which must run inline rather than deadlock waiting on
// a batch only the blocked worker could drain).
thread_local const ThreadPool* tls_pool = nullptr;
thread_local std::size_t tls_worker = 0;
}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  deques_.resize(threads);
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

bool ThreadPool::on_worker_thread() const {
  return tls_pool == this;
}

void ThreadPool::enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // A worker's own submissions stay on its deque (popped LIFO below, so
    // nested work runs cache-warm); external submitters spread round-robin.
    const std::size_t target = on_worker_thread()
                                   ? tls_worker
                                   : next_deque_++ % deques_.size();
    deques_[target].push_back(std::move(task));
    ++submitted_;
    peak_queued_ = std::max(peak_queued_, queued_locked());
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop(std::size_t self) {
  tls_pool = this;
  tls_worker = self;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || queued_locked() > 0; });
      if (!deques_[self].empty()) {
        // Own deque: LIFO — the most recently pushed task is the hottest.
        task = std::move(deques_[self].back());
        deques_[self].pop_back();
      } else {
        // Steal: scan siblings from the right neighbour, taking the oldest
        // task (FIFO) so the victim keeps its warm tail.
        for (std::size_t k = 1; k < deques_.size() && !task; ++k) {
          auto& victim = deques_[(self + k) % deques_.size()];
          if (victim.empty()) continue;
          task = std::move(victim.front());
          victim.pop_front();
          ++stolen_;
        }
        if (!task) return;  // stopping_ and every deque drained
      }
    }
    task();
    executed_.fetch_add(1, std::memory_order_relaxed);
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;

  // Shared join state. The caller always waits for every index — even after
  // a failure — so by-reference capture is safe and no task can outlive the
  // batch (the historical bug: rethrowing on the first future abandoned
  // still-queued tasks holding dangling references).
  struct Join {
    std::mutex m;
    std::condition_variable done;
    std::size_t remaining;
    std::size_t first_error = std::numeric_limits<std::size_t>::max();
    std::exception_ptr error;
  };

  const auto run_one = [&fn](std::size_t i, Join& join) {
    try {
      fn(i);
    } catch (...) {
      std::lock_guard<std::mutex> g(join.m);
      if (i < join.first_error) {
        join.first_error = i;
        join.error = std::current_exception();
      }
    }
  };

  Join join;
  join.remaining = count;
  if (on_worker_thread()) {
    // Re-entrant batch from one of our own workers: run inline. Queueing
    // would let every worker block waiting on a batch none of them can
    // start.
    for (std::size_t i = 0; i < count; ++i) run_one(i, join);
  } else {
    for (std::size_t i = 0; i < count; ++i) {
      enqueue([&run_one, &join, i] {
        run_one(i, join);
        std::lock_guard<std::mutex> g(join.m);
        if (--join.remaining == 0) join.done.notify_all();
      });
    }
    std::unique_lock<std::mutex> lock(join.m);
    join.done.wait(lock, [&join] { return join.remaining == 0; });
  }
  if (join.error) std::rethrow_exception(join.error);
}

}  // namespace droute::util
