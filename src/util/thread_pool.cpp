#include "util/thread_pool.h"

#include <algorithm>

namespace droute::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    executed_.fetch_add(1, std::memory_order_relaxed);
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  std::vector<std::future<void>> futures;
  futures.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    futures.push_back(submit([&fn, i] { fn(i); }));
  }
  for (auto& future : futures) future.get();  // rethrows task exceptions
}

}  // namespace droute::util
