#include "util/table.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <sstream>

namespace droute::util {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  assert(!header_.empty());
}

void TextTable::add_row(std::vector<std::string> row) {
  assert(row.size() == header_.size() && "row arity mismatch");
  rows_.push_back(std::move(row));
}

std::string TextTable::render() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << "| " << row[c] << std::string(width[c] - row[c].size() + 1, ' ');
    }
    out << "|\n";
  };

  emit_row(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    out << "|" << std::string(width[c] + 2, '-');
  }
  out << "|\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string TextTable::render_csv() const {
  auto quote = [](const std::string& field) {
    if (field.find_first_of(",\"\n") == std::string::npos) return field;
    std::string quoted = "\"";
    for (char ch : field) {
      if (ch == '"') quoted += "\"\"";
      else quoted += ch;
    }
    quoted += '"';
    return quoted;
  };
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << ',';
      out << quote(row[c]);
    }
    out << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string fmt_double(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string fmt_seconds(double seconds, int precision) {
  return fmt_double(seconds, precision);
}

std::string fmt_percent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%+.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string fmt_mb(std::uint64_t bytes) {
  char buf[64];
  if (bytes % 1000000ull == 0) {
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(bytes / 1000000ull));
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f",
                  static_cast<double>(bytes) / 1e6);
  }
  return buf;
}

std::string fmt_mbps(double mbps, int precision) {
  return fmt_double(mbps, precision) + " Mbps";
}

}  // namespace droute::util
