// Plain-text table and CSV rendering for bench output.
//
// Every bench binary prints its table/figure as (a) an aligned text table for
// humans and (b) optionally a CSV block for plotting, both produced here so
// the formatting is uniform across all experiments.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace droute::util {

/// Column-aligned text table with a header row.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends one row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  std::size_t row_count() const { return rows_.size(); }

  /// Renders with single-space-padded columns and a separator under the head.
  std::string render() const;

  /// Renders as RFC-4180-ish CSV (quotes fields containing commas/quotes).
  std::string render_csv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats seconds as e.g. "86.92".
std::string fmt_seconds(double seconds, int precision = 2);

/// Formats a fraction as a signed percentage, e.g. -0.5555 -> "-55.55%".
std::string fmt_percent(double fraction, int precision = 2);

/// Formats bytes as the paper's decimal megabytes, e.g. 100000000 -> "100".
std::string fmt_mb(std::uint64_t bytes);

/// Formats a rate in Mbps, e.g. "42.1 Mbps".
std::string fmt_mbps(double mbps, int precision = 1);

/// fixed-point double with given precision.
std::string fmt_double(double value, int precision = 2);

}  // namespace droute::util
