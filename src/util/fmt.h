// Deterministic number formatting shared by every serialized artifact.
//
// format_double is the repo's single canonical double-to-text conversion for
// byte-identical formats (chaos `.case` files, ctrl decision traces): %.17g
// survives a strtod round trip exactly, so reformatting parsed text
// reproduces the same bytes.
#pragma once

#include <string>

namespace droute::util {

/// Canonical shortest-round-trip text for a double (17 significant digits).
std::string format_double(double value);

}  // namespace droute::util
