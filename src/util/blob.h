// Byte-buffer helpers: the in-memory stand-in for the paper's `dd`-generated
// random binary test files ("random data source", Sec II).
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace droute::util {

using Blob = std::vector<std::uint8_t>;

/// Random incompressible content of `size` bytes (deterministic per rng).
inline Blob make_random_blob(Rng& rng, std::size_t size) {
  Blob blob(size);
  std::size_t i = 0;
  for (; i + 8 <= size; i += 8) {
    const std::uint64_t word = rng.next_u64();
    for (int b = 0; b < 8; ++b) {
      blob[i + static_cast<std::size_t>(b)] =
          static_cast<std::uint8_t>(word >> (8 * b));
    }
  }
  for (; i < size; ++i) {
    blob[i] = static_cast<std::uint8_t>(rng.next_u64());
  }
  return blob;
}

}  // namespace droute::util
