#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace droute::util {

namespace {
std::atomic<LogLevel> g_threshold{LogLevel::kOff};
std::once_flag g_env_once;
std::mutex g_write_mutex;

void init_from_env() {
  if (const char* env = std::getenv("DROUTE_LOG")) {
    g_threshold.store(parse_log_level(env));
  } else {
    g_threshold.store(LogLevel::kWarn);
  }
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo:  return "INFO ";
    case LogLevel::kWarn:  return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff:   return "OFF  ";
  }
  return "?";
}
}  // namespace

LogLevel log_threshold() {
  std::call_once(g_env_once, init_from_env);
  return g_threshold.load();
}

void set_log_threshold(LogLevel level) {
  std::call_once(g_env_once, init_from_env);
  g_threshold.store(level);
}

LogLevel parse_log_level(const std::string& name) {
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off") return LogLevel::kOff;
  return LogLevel::kWarn;
}

namespace detail {
void log_write(LogLevel level, const std::string& message) {
  std::lock_guard<std::mutex> lock(g_write_mutex);
  std::fprintf(stderr, "[droute %s] %s\n", level_name(level), message.c_str());
}
}  // namespace detail

}  // namespace droute::util
