#include "util/rng.h"

#include <cassert>
#include <cmath>

namespace droute::util {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
constexpr double kPi = 3.14159265358979323846;
}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.next();
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  assert(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % span);
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return lo + static_cast<std::int64_t>(v % span);
}

double Rng::exponential(double mean) {
  assert(mean > 0);
  double u = uniform();
  while (u <= 0.0) u = uniform();  // avoid log(0)
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  // Box-Muller, always using the cosine branch so each call consumes a fixed
  // number of stream values (simplifies reasoning about reproducibility).
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * kPi * u2);
  return mean + stddev * z;
}

double Rng::pareto(double alpha, double lo, double hi) {
  assert(alpha > 0 && lo > 0 && hi > lo);
  // Inverse-CDF sampling of the bounded Pareto distribution.
  const double u = uniform();
  const double la = std::pow(lo, alpha);
  const double ha = std::pow(hi, alpha);
  const double x = -(u * ha - u * la - ha) / (ha * la);
  return std::pow(1.0 / x, 1.0 / alpha);
}

double Rng::lognormal_mean_cv(double mean, double cv) {
  assert(mean > 0 && cv >= 0);
  if (cv == 0) return mean;
  // If X ~ LogNormal(mu, sigma): E[X] = exp(mu + sigma^2/2),
  // CV[X]^2 = exp(sigma^2) - 1.  Solve for (mu, sigma) from (mean, cv).
  const double sigma2 = std::log(1.0 + cv * cv);
  const double mu = std::log(mean) - sigma2 / 2.0;
  return std::exp(normal(mu, std::sqrt(sigma2)));
}

bool Rng::chance(double p) { return uniform() < p; }

Rng Rng::fork(std::uint64_t salt) {
  // Mix the salt into a fresh seed derived from this stream; forked streams
  // are independent of subsequent draws from the parent.
  SplitMix64 sm(next_u64() ^ (salt * 0x9e3779b97f4a7c15ull));
  Rng child(0);
  for (auto& word : child.s_) word = sm.next();
  return child;
}

Rng Rng::split(std::uint64_t key) const {
  // Hash the full 256-bit state together with the key through SplitMix64
  // steps (const: the parent stream is not advanced). Each state word is
  // folded through its own SplitMix64 round so that states differing in any
  // word produce unrelated children.
  SplitMix64 mixer(key * 0x9e3779b97f4a7c15ull);
  std::uint64_t acc = mixer.next();
  for (std::uint64_t word : s_) {
    SplitMix64 fold(acc ^ word);
    acc = fold.next();
  }
  SplitMix64 expand(acc);
  Rng child(0);
  for (auto& word : child.s_) word = expand.next();
  return child;
}

}  // namespace droute::util
