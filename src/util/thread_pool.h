// Fixed-size thread pool used to parallelize independent simulation runs
// (measurement campaigns run one simulator instance per task; tasks share
// nothing, so the pool needs no work stealing).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace droute::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers (defaults to hardware concurrency, min 1).
  explicit ThreadPool(std::size_t threads = 0);

  /// Drains the queue and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// Enqueue a task; returns a future for its result.
  template <typename Fn>
  auto submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using ResultT = std::invoke_result_t<Fn>;
    auto task = std::make_shared<std::packaged_task<ResultT()>>(
        std::forward<Fn>(fn));
    std::future<ResultT> future = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace_back([task]() { (*task)(); });
    }
    cv_.notify_one();
    return future;
  }

  /// Runs fn(i) for i in [0, count) across the pool and waits for all.
  /// Exceptions from tasks are rethrown (first one wins).
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace droute::util
