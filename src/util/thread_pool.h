// Fixed-size thread pool with per-worker deques and work stealing.
//
// Two very different workloads share this pool:
//   * measurement campaigns — coarse, independent simulation runs (one
//     simulator instance per task, nothing shared);
//   * the sharded fabric allocator — batches of per-component water-fills
//     dispatched from the simulation thread (DESIGN.md §16).
// Both produce tasks far heavier than the scheduling overhead, so the pool
// keeps one mutex over all deques (no lock-free heroics) but preserves the
// stealing *discipline*: submitters distribute round-robin across worker
// deques, a worker pops its own deque LIFO (cache-warm), and an idle worker
// steals the oldest task from a sibling FIFO, which keeps the tail of an
// uneven batch balanced.
//
// Determinism contract (relied on by net::Fabric's sharded mode): the pool
// never reorders *results* — parallel_for runs every index exactly once and
// parallel_for_reduce folds in index order, so outputs are a function of the
// inputs alone, never of thread count or scheduling.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace droute::util {

class ThreadPool {
 public:
  /// Point-in-time execution statistics (see stats()).
  struct Stats {
    std::uint64_t submitted = 0;     // tasks ever enqueued
    std::uint64_t executed = 0;      // tasks that finished running
    std::uint64_t stolen = 0;        // tasks taken from a sibling's deque
    std::size_t queued = 0;          // tasks waiting right now (all deques)
    std::size_t peak_queued = 0;     // high-water mark of total queued
  };

  /// Spawns `threads` workers (defaults to hardware concurrency, min 1).
  explicit ThreadPool(std::size_t threads = 0);

  /// Drains the queues and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// Tasks currently waiting across all deques (snapshot; racy by nature).
  std::size_t queue_depth() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return queued_locked();
  }

  /// Tasks that have finished executing so far.
  std::uint64_t tasks_executed() const {
    return executed_.load(std::memory_order_relaxed);
  }

  /// Consistent snapshot of the pool's counters.
  Stats stats() const {
    Stats s;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      s.submitted = submitted_;
      s.stolen = stolen_;
      s.queued = queued_locked();
      s.peak_queued = peak_queued_;
    }
    s.executed = executed_.load(std::memory_order_relaxed);
    return s;
  }

  /// Enqueue a task; returns a future for its result.
  template <typename Fn>
  auto submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using ResultT = std::invoke_result_t<Fn>;
    auto task = std::make_shared<std::packaged_task<ResultT()>>(
        std::forward<Fn>(fn));
    std::future<ResultT> future = task->get_future();
    enqueue([task]() { (*task)(); });
    return future;
  }

  /// Runs fn(i) for i in [0, count) across the pool and waits for all.
  ///
  /// Every index runs even when some throw (a throwing body must not drop
  /// the rest of the batch); after the batch drains, the exception thrown by
  /// the *lowest* failing index is rethrown — a deterministic choice, unlike
  /// "whichever task a worker happened to finish first". Called from inside
  /// one of this pool's own workers, the batch runs inline on the calling
  /// thread (same semantics, no deadlock).
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn);

  /// Deterministic parallel map-reduce: map(i) runs across the pool for i in
  /// [0, count), then the calling thread folds the results strictly left to
  /// right: reduce(...reduce(reduce(init, r0), r1)..., r[count-1]). The fold
  /// order is a function of `count` alone — never of thread count or
  /// scheduling — so the result (floating-point included) is byte-identical
  /// across pool sizes. Exceptions propagate as in parallel_for.
  template <typename T, typename MapFn, typename ReduceFn>
  T parallel_for_reduce(std::size_t count, T init, MapFn&& map,
                        ReduceFn&& reduce) {
    std::vector<T> results(count);
    parallel_for(count, [&](std::size_t i) { results[i] = map(i); });
    T acc = std::move(init);
    for (T& r : results) acc = reduce(std::move(acc), std::move(r));
    return acc;
  }

 private:
  void enqueue(std::function<void()> task);
  void worker_loop(std::size_t self);
  /// True iff the calling thread is one of this pool's workers.
  bool on_worker_thread() const;
  std::size_t queued_locked() const {
    std::size_t total = 0;
    for (const auto& deque : deques_) total += deque.size();
    return total;
  }

  std::vector<std::thread> workers_;
  // One deque per worker; deques_[i] is worker i's. External submitters
  // round-robin via next_deque_; a worker's nested submits stay local.
  std::vector<std::deque<std::function<void()>>> deques_;
  std::size_t next_deque_ = 0;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::uint64_t submitted_ = 0;
  std::uint64_t stolen_ = 0;
  std::size_t peak_queued_ = 0;
  std::atomic<std::uint64_t> executed_{0};
};

}  // namespace droute::util
