// Fixed-size thread pool used to parallelize independent simulation runs
// (measurement campaigns run one simulator instance per task; tasks share
// nothing, so the pool needs no work stealing).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace droute::util {

class ThreadPool {
 public:
  /// Point-in-time execution statistics (see stats()).
  struct Stats {
    std::uint64_t submitted = 0;     // tasks ever enqueued
    std::uint64_t executed = 0;      // tasks that finished running
    std::size_t queued = 0;          // tasks waiting right now
    std::size_t peak_queued = 0;     // high-water mark of the queue
  };

  /// Spawns `threads` workers (defaults to hardware concurrency, min 1).
  explicit ThreadPool(std::size_t threads = 0);

  /// Drains the queue and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// Tasks currently waiting in the queue (snapshot; racy by nature).
  std::size_t queue_depth() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
  }

  /// Tasks that have finished executing so far.
  std::uint64_t tasks_executed() const {
    return executed_.load(std::memory_order_relaxed);
  }

  /// Consistent snapshot of the pool's counters.
  Stats stats() const {
    Stats s;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      s.submitted = submitted_;
      s.queued = queue_.size();
      s.peak_queued = peak_queued_;
    }
    s.executed = executed_.load(std::memory_order_relaxed);
    return s;
  }

  /// Enqueue a task; returns a future for its result.
  template <typename Fn>
  auto submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using ResultT = std::invoke_result_t<Fn>;
    auto task = std::make_shared<std::packaged_task<ResultT()>>(
        std::forward<Fn>(fn));
    std::future<ResultT> future = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace_back([task]() { (*task)(); });
      ++submitted_;
      if (queue_.size() > peak_queued_) peak_queued_ = queue_.size();
    }
    cv_.notify_one();
    return future;
  }

  /// Runs fn(i) for i in [0, count) across the pool and waits for all.
  /// Exceptions from tasks are rethrown (first one wins).
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::uint64_t submitted_ = 0;
  std::size_t peak_queued_ = 0;
  std::atomic<std::uint64_t> executed_{0};
};

}  // namespace droute::util
