#include "wire/rsync_pipe.h"

#include <algorithm>
#include <chrono>

#include "rsyncx/md5.h"
#include "rsyncx/patch.h"
#include "rsyncx/session.h"
#include "rsyncx/wire_format.h"
#include "util/logging.h"

namespace droute::wire {

namespace {
constexpr std::uint64_t kMaxName = 4096;
constexpr std::uint64_t kMaxPayload = 1ull << 32;  // 4 GiB sanity bound

util::Result<util::Blob> recv_framed(Stream& stream, std::uint64_t max_len) {
  auto len = stream.recv_u64();
  if (!len.ok()) return util::Error{len.error()};
  if (len.value() > max_len) {
    return util::Error::make("framed message exceeds sanity bound");
  }
  util::Blob data(len.value());
  if (auto status = stream.recv_all(data); !status.ok()) {
    return util::Error{status.error()};
  }
  return data;
}

util::Status send_framed(Stream& stream, std::span<const std::uint8_t> data,
                         RateLimiter* limiter = nullptr) {
  if (auto status = stream.send_u64(data.size()); !status.ok()) return status;
  constexpr std::size_t kIoChunk = 256 * 1024;
  std::size_t offset = 0;
  while (offset < data.size()) {
    const std::size_t take = std::min(kIoChunk, data.size() - offset);
    if (limiter != nullptr) limiter->acquire(take);
    if (auto status = stream.send_all(data.subspan(offset, take));
        !status.ok()) {
      return status;
    }
    offset += take;
  }
  return util::Status::success();
}
}  // namespace

RsyncServer::~RsyncServer() { stop(); }

util::Result<std::uint16_t> RsyncServer::start() {
  auto listener = Listener::bind(0);
  if (!listener.ok()) return util::Error{listener.error()};
  listener_ = std::make_unique<Listener>(std::move(listener).value());
  const std::uint16_t port = listener_->port();
  thread_ = std::thread([this] { serve(); });
  return port;
}

void RsyncServer::stop() {
  if (stopping_.exchange(true)) return;
  if (listener_) listener_->shutdown();
  if (thread_.joinable()) thread_.join();
}

void RsyncServer::preload(const std::string& name, util::Blob content) {
  std::lock_guard<std::mutex> lock(store_mutex_);
  store_[name] = std::move(content);
}

std::optional<util::Blob> RsyncServer::lookup(const std::string& name) const {
  std::lock_guard<std::mutex> lock(store_mutex_);
  auto it = store_.find(name);
  if (it == store_.end()) return std::nullopt;
  return it->second;
}

void RsyncServer::serve() {
  while (!stopping_.load()) {
    auto stream = listener_->accept();
    if (!stream.ok()) return;
    handle(std::move(stream).value());
  }
}

void RsyncServer::handle(Stream client) {
  auto name_blob = recv_framed(client, kMaxName);
  if (!name_blob.ok()) return;
  const std::string name(name_blob.value().begin(), name_blob.value().end());
  auto target_size = client.recv_u64();
  if (!target_size.ok() || target_size.value() > kMaxPayload) return;

  // Signature of our basis (empty signature when we hold nothing).
  util::Blob basis;
  {
    std::lock_guard<std::mutex> lock(store_mutex_);
    auto it = store_.find(name);
    if (it != store_.end()) basis = it->second;
  }
  rsyncx::Signature sig;
  const std::uint32_t block =
      rsyncx::recommended_block_size(basis.empty() ? target_size.value()
                                                   : basis.size());
  if (!basis.empty()) {
    sig = rsyncx::compute_signature(basis, block);
  } else {
    sig.block_size = block;
    sig.basis_size = 0;
  }
  if (!send_framed(client, rsyncx::encode_signature(sig)).ok()) return;

  auto delta_blob = recv_framed(client, kMaxPayload);
  if (!delta_blob.ok()) return;
  auto delta = rsyncx::decode_delta(delta_blob.value());
  if (!delta.ok()) {
    DROUTE_LOG(kWarn) << "rsync server: bad delta: " << delta.error().message;
    return;  // drop the connection; the client sees a short read
  }
  auto rebuilt = rsyncx::apply_delta(basis, delta.value());
  if (!rebuilt.ok()) {
    DROUTE_LOG(kWarn) << "rsync server: patch failed: "
                      << rebuilt.error().message;
    return;
  }
  const rsyncx::Md5Digest digest = rsyncx::Md5::hash(rebuilt.value());
  {
    std::lock_guard<std::mutex> lock(store_mutex_);
    store_[name] = std::move(rebuilt).value();
  }
  if (!client.send_all(digest).ok()) return;
  pushes_served_.fetch_add(1);
}

util::Result<RsyncPushStats> rsync_push(std::uint16_t port,
                                        const std::string& name,
                                        std::span<const std::uint8_t> data,
                                        double out_rate_bytes_per_s) {
  const auto start = std::chrono::steady_clock::now();
  auto stream = connect_local(port);
  if (!stream.ok()) return util::Error{stream.error()};
  Stream conn = std::move(stream).value();

  const util::Blob name_bytes(name.begin(), name.end());
  if (auto status = send_framed(conn, name_bytes); !status.ok()) {
    return util::Error{status.error()};
  }
  if (auto status = conn.send_u64(data.size()); !status.ok()) {
    return util::Error{status.error()};
  }

  auto sig_blob = recv_framed(conn, kMaxPayload);
  if (!sig_blob.ok()) return util::Error{sig_blob.error()};
  auto sig = rsyncx::decode_signature(sig_blob.value());
  if (!sig.ok()) return util::Error{sig.error()};

  const rsyncx::SignatureIndex index(sig.value());
  const rsyncx::Delta delta = rsyncx::compute_delta(data, index);
  const util::Blob delta_bytes = rsyncx::encode_delta(delta);
  RateLimiter limiter(out_rate_bytes_per_s);
  if (auto status = send_framed(conn, delta_bytes,
                                limiter.unlimited() ? nullptr : &limiter);
      !status.ok()) {
    return util::Error{status.error()};
  }

  rsyncx::Md5Digest digest;
  if (auto status = conn.recv_all(digest); !status.ok()) {
    return util::Error{status.error()};
  }
  const auto end = std::chrono::steady_clock::now();

  RsyncPushStats stats;
  stats.seconds = std::chrono::duration<double>(end - start).count();
  stats.signature_bytes = sig_blob.value().size();
  stats.delta_bytes = delta_bytes.size();
  stats.digest_ok = digest == rsyncx::Md5::hash(data);
  return stats;
}

}  // namespace droute::wire
