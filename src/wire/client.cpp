#include "wire/client.h"

#include <algorithm>
#include <chrono>

#include "rsyncx/md5.h"
#include "wire/rate_limiter.h"
#include "wire/socket.h"

namespace droute::wire {

namespace {

constexpr std::size_t kIoChunk = 256 * 1024;

util::Result<WireTiming> run_upload(Stream stream,
                                    std::span<const std::uint8_t> data,
                                    double out_rate_bytes_per_s) {
  RateLimiter limiter(out_rate_bytes_per_s);
  const auto start = std::chrono::steady_clock::now();

  std::size_t offset = 0;
  while (offset < data.size()) {
    const std::size_t take = std::min(kIoChunk, data.size() - offset);
    limiter.acquire(take);
    if (auto status = stream.send_all(data.subspan(offset, take));
        !status.ok()) {
      return util::Error{status.error()};
    }
    offset += take;
  }

  rsyncx::Md5Digest digest;
  if (auto status = stream.recv_all(digest); !status.ok()) {
    return util::Error{status.error()};
  }
  const auto end = std::chrono::steady_clock::now();

  WireTiming timing;
  timing.seconds = std::chrono::duration<double>(end - start).count();
  timing.mbytes_per_s =
      timing.seconds > 0.0
          ? static_cast<double>(data.size()) / 1e6 / timing.seconds
          : 0.0;
  timing.digest_ok = digest == rsyncx::Md5::hash(data);
  return timing;
}

}  // namespace

util::Result<WireTiming> upload_direct(std::uint16_t sink_port,
                                       std::span<const std::uint8_t> data,
                                       double out_rate_bytes_per_s) {
  auto stream = connect_local(sink_port);
  if (!stream.ok()) return util::Error{stream.error()};
  Stream conn = std::move(stream).value();
  if (auto status = conn.send_u64(data.size()); !status.ok()) {
    return util::Error{status.error()};
  }
  return run_upload(std::move(conn), data, out_rate_bytes_per_s);
}

util::Result<WireTiming> upload_via_relay(std::uint16_t relay_port,
                                          std::uint16_t sink_port,
                                          std::span<const std::uint8_t> data,
                                          double out_rate_bytes_per_s) {
  auto stream = connect_local(relay_port);
  if (!stream.ok()) return util::Error{stream.error()};
  Stream conn = std::move(stream).value();
  if (auto status = conn.send_u64(sink_port); !status.ok()) {
    return util::Error{status.error()};
  }
  if (auto status = conn.send_u64(data.size()); !status.ok()) {
    return util::Error{status.error()};
  }
  return run_upload(std::move(conn), data, out_rate_bytes_per_s);
}

}  // namespace droute::wire
