// Sink: the loopback stand-in for a cloud-storage front end.
//
// Protocol (little-endian framing): client sends <len:u64> then `len` bytes;
// the sink replies with the 16-byte MD5 of what it received. A sink exposes
// several listeners, each with its own ingress rate limit — this is how the
// demo reproduces path-dependent throughput to one logical server: the
// "policed path" port drains slowly, the "peering path" port drains fast.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "util/result.h"
#include "wire/rate_limiter.h"
#include "wire/socket.h"

namespace droute::wire {

class Sink {
 public:
  Sink() = default;
  ~Sink();
  Sink(const Sink&) = delete;
  Sink& operator=(const Sink&) = delete;

  /// Adds a listener with the given ingress rate (bytes/s; <= 0 unlimited).
  /// Returns the bound port. Call before start().
  [[nodiscard]]
  util::Result<std::uint16_t> add_ingress(double rate_bytes_per_s);

  /// Spawns one service thread per listener.
  [[nodiscard]] util::Status start();

  /// Stops all listeners and joins threads (idempotent).
  void stop();

  std::uint64_t objects_received() const { return objects_received_.load(); }
  std::uint64_t bytes_received() const { return bytes_received_.load(); }

 private:
  struct Ingress {
    std::unique_ptr<Listener> listener;
    std::unique_ptr<RateLimiter> limiter;
    std::thread thread;
  };
  void serve(Ingress* ingress);

  std::vector<std::unique_ptr<Ingress>> ingresses_;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> objects_received_{0};
  std::atomic<std::uint64_t> bytes_received_{0};
  bool started_ = false;
};

}  // namespace droute::wire
