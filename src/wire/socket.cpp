#include "wire/socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "obs/recorder.h"

namespace droute::wire {

namespace {
util::Error errno_error(const std::string& what) {
  return util::Error::make(what + ": " + std::strerror(errno), errno);
}
}  // namespace

Fd::~Fd() { reset(); }

Fd& Fd::operator=(Fd&& other) noexcept {
  if (this != &other) {
    reset();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Fd::reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

util::Status Stream::send_all(std::span<const std::uint8_t> data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd_.get(), data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return util::Status{errno_error("send")};
    }
    sent += static_cast<std::size_t>(n);
  }
  // By-name lookup rather than a cached handle: Stream is a short-lived
  // value type, so there is no construction point tied to recorder lifetime.
  obs::count("wire.bytes_sent_total", sent);
  return util::Status::success();
}

util::Status Stream::recv_all(std::span<std::uint8_t> out) {
  std::size_t received = 0;
  while (received < out.size()) {
    const ssize_t n =
        ::recv(fd_.get(), out.data() + received, out.size() - received, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return util::Status{errno_error("recv")};
    }
    if (n == 0) {
      return util::Status::failure("connection closed mid-message");
    }
    received += static_cast<std::size_t>(n);
  }
  obs::count("wire.bytes_received_total", received);
  return util::Status::success();
}

util::Status Stream::send_u64(std::uint64_t value) {
  std::uint8_t buf[8];
  for (int i = 0; i < 8; ++i) {
    buf[i] = static_cast<std::uint8_t>(value >> (8 * i));
  }
  return send_all(buf);
}

util::Result<std::uint64_t> Stream::recv_u64() {
  std::uint8_t buf[8];
  if (auto status = recv_all(buf); !status.ok()) {
    return util::Error{status.error()};
  }
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<std::uint64_t>(buf[i]) << (8 * i);
  }
  return value;
}

util::Result<Listener> Listener::bind(std::uint16_t port) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return errno_error("socket");
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    return errno_error("bind");
  }
  if (::listen(fd.get(), 16) < 0) return errno_error("listen");

  socklen_t len = sizeof(addr);
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    return errno_error("getsockname");
  }
  return Listener(std::move(fd), ntohs(addr.sin_port));
}

util::Result<Stream> Listener::accept() {
  const int client = ::accept(fd_.get(), nullptr, nullptr);
  if (client < 0) return errno_error("accept");
  return Stream(Fd(client));
}

void Listener::shutdown() {
  // Half-close only: resetting fd_ here would race a server thread blocked
  // in accept() on the same descriptor. ::shutdown unblocks that accept()
  // (it returns EINVAL); the fd itself is released by the destructor, which
  // owners run only after joining their accept thread.
  if (fd_.valid()) ::shutdown(fd_.get(), SHUT_RDWR);
}

util::Result<Stream> connect_local(std::uint16_t port) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return errno_error("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return errno_error("connect");
  }
  const int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Stream(std::move(fd));
}

}  // namespace droute::wire
