// Wire client: uploads a buffer to a sink either directly or via a relay,
// verifying the returned digest. Returns wall-clock timings — this is the
// real-socket counterpart of scenario::World::run_upload.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "util/result.h"

namespace droute::wire {

struct WireTiming {
  double seconds = 0.0;
  double mbytes_per_s = 0.0;
  bool digest_ok = false;
};

/// Uploads `data` to the sink at `sink_port` (direct path). The outbound
/// rate limit emulates a policed first hop (<= 0 unlimited).
[[nodiscard]] util::Result<WireTiming> upload_direct(std::uint16_t sink_port,
                                       std::span<const std::uint8_t> data,
                                       double out_rate_bytes_per_s = 0.0);

/// Uploads `data` to `sink_port` via the relay at `relay_port`.
[[nodiscard]]
util::Result<WireTiming> upload_via_relay(std::uint16_t relay_port,
                                          std::uint16_t sink_port,
                                          std::span<const std::uint8_t> data,
                                          double out_rate_bytes_per_s = 0.0);

}  // namespace droute::wire
