// RelayDaemon: the DTN of the wire data plane.
//
// Protocol: client sends <dest_port:u64><len:u64> then `len` bytes; the
// relay forwards to 127.0.0.1:dest_port with the sink protocol and pipes the
// sink's 16-byte digest back to the client.
//
// Two forwarding modes mirror transfer::DetourMode:
//   * store-and-forward — buffer the whole object, then upload (the paper);
//   * streaming         — cut-through piping in fixed chunks (our pipelined
//                         extension).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>

#include "util/result.h"
#include "wire/rate_limiter.h"
#include "wire/socket.h"

namespace droute::wire {

enum class RelayMode { kStoreAndForward, kStreaming };

class RelayDaemon {
 public:
  struct Options {
    RelayMode mode = RelayMode::kStoreAndForward;
    /// Ingress rate limit on the client->relay leg (<= 0 unlimited).
    double ingress_rate_bytes_per_s = 0.0;
    /// Egress rate limit on the relay->sink leg (<= 0 unlimited).
    double egress_rate_bytes_per_s = 0.0;
  };

  RelayDaemon() : options_(Options{}) {}
  explicit RelayDaemon(Options options) : options_(options) {}
  ~RelayDaemon();
  RelayDaemon(const RelayDaemon&) = delete;
  RelayDaemon& operator=(const RelayDaemon&) = delete;

  /// Binds and spawns the service thread; returns the relay port.
  [[nodiscard]] util::Result<std::uint16_t> start();

  void stop();

  std::uint64_t objects_relayed() const { return objects_relayed_.load(); }

 private:
  void serve();
  void handle(Stream client);

  Options options_;
  std::unique_ptr<Listener> listener_;
  std::unique_ptr<RateLimiter> ingress_limiter_;
  std::unique_ptr<RateLimiter> egress_limiter_;
  std::thread thread_;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> objects_relayed_{0};
};

}  // namespace droute::wire
