#include "wire/sink.h"

#include <algorithm>

#include "check/contract.h"
#include "rsyncx/md5.h"
#include "util/logging.h"

namespace droute::wire {

namespace {
constexpr std::size_t kIoChunk = 256 * 1024;
}

Sink::~Sink() { stop(); }

util::Result<std::uint16_t> Sink::add_ingress(double rate_bytes_per_s) {
  DROUTE_CHECK(!started_, "add_ingress after start");
  auto listener = Listener::bind(0);
  if (!listener.ok()) return util::Error{listener.error()};
  auto ingress = std::make_unique<Ingress>();
  ingress->listener =
      std::make_unique<Listener>(std::move(listener).value());
  ingress->limiter = std::make_unique<RateLimiter>(rate_bytes_per_s);
  const std::uint16_t port = ingress->listener->port();
  ingresses_.push_back(std::move(ingress));
  return port;
}

util::Status Sink::start() {
  DROUTE_CHECK(!started_, "Sink::start called twice");
  started_ = true;
  for (auto& ingress : ingresses_) {
    ingress->thread = std::thread([this, raw = ingress.get()] { serve(raw); });
  }
  return util::Status::success();
}

void Sink::stop() {
  if (stopping_.exchange(true)) return;
  for (auto& ingress : ingresses_) ingress->listener->shutdown();
  for (auto& ingress : ingresses_) {
    if (ingress->thread.joinable()) ingress->thread.join();
  }
}

void Sink::serve(Ingress* ingress) {
  while (!stopping_.load()) {
    auto stream = ingress->listener->accept();
    if (!stream.ok()) return;  // listener shut down
    Stream conn = std::move(stream).value();

    auto len = conn.recv_u64();
    if (!len.ok()) continue;

    rsyncx::Md5 md5;
    std::vector<std::uint8_t> buffer(kIoChunk);
    std::uint64_t remaining = len.value();
    bool failed = false;
    while (remaining > 0) {
      const std::size_t take =
          static_cast<std::size_t>(std::min<std::uint64_t>(kIoChunk,
                                                           remaining));
      // Ingress policing: tokens are charged before the read drains the
      // kernel buffer, bounding sustained throughput at the limiter's rate.
      ingress->limiter->acquire(take);
      auto status = conn.recv_all(std::span(buffer.data(), take));
      if (!status.ok()) {
        failed = true;
        break;
      }
      md5.update(std::span(buffer.data(), take));
      remaining -= take;
    }
    if (failed) continue;

    const rsyncx::Md5Digest digest = md5.finalize();
    if (auto status = conn.send_all(digest); !status.ok()) continue;
    objects_received_.fetch_add(1);
    bytes_received_.fetch_add(len.value());
  }
}

}  // namespace droute::wire
