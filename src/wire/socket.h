// Minimal RAII TCP socket layer (IPv4 loopback) for the wire data plane.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "util/result.h"

namespace droute::wire {

/// Owning file descriptor. Move-only.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd();
  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept;
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void reset();

 private:
  int fd_ = -1;
};

/// A connected TCP stream.
class Stream {
 public:
  explicit Stream(Fd fd) : fd_(std::move(fd)) {}

  /// Writes the whole buffer; fails on EPIPE/reset.
  [[nodiscard]] util::Status send_all(std::span<const std::uint8_t> data);

  /// Reads exactly `out.size()` bytes; fails on EOF/reset.
  [[nodiscard]] util::Status recv_all(std::span<std::uint8_t> out);

  /// 64-bit little-endian framing helpers.
  [[nodiscard]] util::Status send_u64(std::uint64_t value);
  util::Result<std::uint64_t> recv_u64();

  bool valid() const { return fd_.valid(); }
  int raw_fd() const { return fd_.get(); }

 private:
  Fd fd_;
};

/// A listening socket bound to 127.0.0.1. Port 0 picks a free port.
class Listener {
 public:
  [[nodiscard]] static util::Result<Listener> bind(std::uint16_t port);

  /// Blocks until a client connects or the listener is shut down.
  [[nodiscard]] util::Result<Stream> accept();

  /// Unblocks pending/future accept() calls (they return errors). Safe to
  /// call from another thread while accept() blocks; the descriptor stays
  /// open until the Listener is destroyed (after joining the accept thread).
  void shutdown();

  std::uint16_t port() const { return port_; }

 private:
  Listener(Fd fd, std::uint16_t port) : fd_(std::move(fd)), port_(port) {}
  Fd fd_;
  std::uint16_t port_ = 0;
};

/// Connects to 127.0.0.1:`port`.
[[nodiscard]] util::Result<Stream> connect_local(std::uint16_t port);

}  // namespace droute::wire
