// Token-bucket rate limiter for the real-socket data plane.
//
// Emulates path policing on loopback: a writer acquires tokens for each
// buffer and sleeps out any deficit, producing a sustained byte rate equal
// to the configured rate regardless of buffer sizes (burst capacity bounds
// short-term excess).
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>

namespace droute::obs {
class Counter;
class Histogram;
}  // namespace droute::obs

namespace droute::wire {

class RateLimiter {
 public:
  using Clock = std::chrono::steady_clock;

  /// `rate_bytes_per_s` <= 0 disables limiting. `burst_bytes` is the bucket
  /// depth (default: 1/8 second worth of tokens, min 64 KiB).
  explicit RateLimiter(double rate_bytes_per_s, std::uint64_t burst_bytes = 0);

  /// Blocks (sleeps) until `bytes` tokens are available, then consumes them.
  /// Thread-safe.
  void acquire(std::uint64_t bytes);

  /// Duration `bytes` would have to wait right now, without consuming.
  std::chrono::nanoseconds peek_delay(std::uint64_t bytes);

  double rate_bytes_per_s() const { return rate_; }
  bool unlimited() const { return rate_ <= 0.0; }

 private:
  void refill_locked(Clock::time_point now);

  double rate_;
  double burst_;
  double tokens_;
  Clock::time_point last_refill_;
  std::mutex mutex_;
  // obs handles (null when recording is disabled at construction).
  obs::Counter* obs_token_waits_ = nullptr;
  obs::Histogram* obs_token_wait_ = nullptr;
};

}  // namespace droute::wire
