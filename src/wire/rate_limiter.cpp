#include "wire/rate_limiter.h"

#include <algorithm>
#include <thread>

#include "obs/metrics.h"
#include "obs/recorder.h"

namespace droute::wire {

RateLimiter::RateLimiter(double rate_bytes_per_s, std::uint64_t burst_bytes)
    : rate_(rate_bytes_per_s),
      burst_(burst_bytes > 0
                 ? static_cast<double>(burst_bytes)
                 : std::max(65536.0, rate_bytes_per_s / 8.0)),
      tokens_(burst_),
      last_refill_(Clock::now()) {
  obs_token_waits_ = obs::counter("wire.token_waits_total");
  obs_token_wait_ =
      obs::histogram("wire.token_wait_s", obs::duration_bounds_s());
}

void RateLimiter::refill_locked(Clock::time_point now) {
  const std::chrono::duration<double> dt = now - last_refill_;
  tokens_ = std::min(burst_, tokens_ + dt.count() * rate_);
  last_refill_ = now;
}

void RateLimiter::acquire(std::uint64_t bytes) {
  if (unlimited()) return;
  // Debt-based bucket: charge immediately (the bucket may go negative —
  // buffers larger than the bucket depth are legal) and sleep until the
  // refill stream pays the debt off. Sustained rate equals `rate_`
  // regardless of buffer size; bursts are bounded by `burst_`.
  std::chrono::nanoseconds wait{0};
  {
    std::lock_guard<std::mutex> lock(mutex_);
    refill_locked(Clock::now());
    tokens_ -= static_cast<double>(bytes);
    if (tokens_ >= 0.0) return;
    wait = std::chrono::nanoseconds(
        static_cast<std::int64_t>(-tokens_ / rate_ * 1e9));
  }
  obs::add(obs_token_waits_);
  obs::observe(obs_token_wait_,
               std::chrono::duration<double>(wait).count());
  std::this_thread::sleep_for(wait);
}

std::chrono::nanoseconds RateLimiter::peek_delay(std::uint64_t bytes) {
  if (unlimited()) return std::chrono::nanoseconds(0);
  std::lock_guard<std::mutex> lock(mutex_);
  refill_locked(Clock::now());
  const double need = static_cast<double>(bytes);
  if (tokens_ >= need) return std::chrono::nanoseconds(0);
  return std::chrono::nanoseconds(
      static_cast<std::int64_t>((need - tokens_) / rate_ * 1e9));
}

}  // namespace droute::wire
