// Real rsync push over TCP: the client -> DTN leg of the detour as an
// actually-running protocol, using rsyncx's signature/delta/patch machinery
// and the wire_format encoding.
//
// Protocol (little-endian framing):
//   client -> server : name_len u64 | name | target_size u64
//   server -> client : sig_len u64 | encoded Signature (of server's basis,
//                      empty signature when it holds no basis)
//   client -> server : delta_len u64 | encoded Delta
//   server -> client : MD5 of the reconstructed file (16 bytes)
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

#include "util/blob.h"
#include "util/result.h"
#include "wire/rate_limiter.h"
#include "wire/socket.h"

namespace droute::wire {

/// The DTN side: an in-memory file store behind an rsync receiver.
class RsyncServer {
 public:
  RsyncServer() = default;
  ~RsyncServer();
  RsyncServer(const RsyncServer&) = delete;
  RsyncServer& operator=(const RsyncServer&) = delete;

  /// Binds and spawns the service thread; returns the port.
  [[nodiscard]] util::Result<std::uint16_t> start();
  void stop();

  /// Seeds a (possibly stale) basis file, as a persistent DTN cache would.
  void preload(const std::string& name, util::Blob content);

  /// Reads back a stored file (for verification).
  std::optional<util::Blob> lookup(const std::string& name) const;

  std::uint64_t pushes_served() const { return pushes_served_.load(); }

 private:
  void serve();
  void handle(Stream client);

  std::unique_ptr<Listener> listener_;
  std::thread thread_;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> pushes_served_{0};
  mutable std::mutex store_mutex_;
  std::map<std::string, util::Blob> store_;
};

struct RsyncPushStats {
  double seconds = 0.0;
  std::uint64_t signature_bytes = 0;  // received from the server
  std::uint64_t delta_bytes = 0;      // sent to the server
  bool digest_ok = false;
};

/// Pushes `data` as `name` to the RsyncServer at `port`. `out_rate` throttles
/// the delta upload (<= 0 unlimited).
[[nodiscard]] util::Result<RsyncPushStats> rsync_push(std::uint16_t port,
                                        const std::string& name,
                                        std::span<const std::uint8_t> data,
                                        double out_rate_bytes_per_s = 0.0);

}  // namespace droute::wire
