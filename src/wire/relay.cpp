#include "wire/relay.h"

#include <algorithm>
#include <vector>

#include "util/logging.h"

namespace droute::wire {

namespace {
constexpr std::size_t kIoChunk = 256 * 1024;
}

RelayDaemon::~RelayDaemon() { stop(); }

util::Result<std::uint16_t> RelayDaemon::start() {
  auto listener = Listener::bind(0);
  if (!listener.ok()) return util::Error{listener.error()};
  listener_ = std::make_unique<Listener>(std::move(listener).value());
  ingress_limiter_ =
      std::make_unique<RateLimiter>(options_.ingress_rate_bytes_per_s);
  egress_limiter_ =
      std::make_unique<RateLimiter>(options_.egress_rate_bytes_per_s);
  const std::uint16_t port = listener_->port();
  thread_ = std::thread([this] { serve(); });
  return port;
}

void RelayDaemon::stop() {
  if (stopping_.exchange(true)) return;
  if (listener_) listener_->shutdown();
  if (thread_.joinable()) thread_.join();
}

void RelayDaemon::serve() {
  while (!stopping_.load()) {
    auto stream = listener_->accept();
    if (!stream.ok()) return;
    handle(std::move(stream).value());
  }
}

void RelayDaemon::handle(Stream client) {
  auto dest_port = client.recv_u64();
  if (!dest_port.ok()) return;
  auto len = client.recv_u64();
  if (!len.ok()) return;

  auto upstream =
      connect_local(static_cast<std::uint16_t>(dest_port.value()));
  if (!upstream.ok()) {
    DROUTE_LOG(kWarn) << "relay: upstream connect failed: "
                      << upstream.error().message;
    return;
  }
  Stream sink = std::move(upstream).value();
  if (!sink.send_u64(len.value()).ok()) return;

  std::vector<std::uint8_t> buffer(kIoChunk);
  if (options_.mode == RelayMode::kStoreAndForward) {
    // Receive the complete object first (the rsync-to-DTN leg)...
    std::vector<std::uint8_t> object(len.value());
    std::uint64_t offset = 0;
    while (offset < len.value()) {
      const std::size_t take = static_cast<std::size_t>(
          std::min<std::uint64_t>(kIoChunk, len.value() - offset));
      ingress_limiter_->acquire(take);
      if (!client.recv_all(std::span(object.data() + offset, take)).ok()) {
        return;
      }
      offset += take;
    }
    // ...then upload it (the DTN-to-provider leg).
    offset = 0;
    while (offset < object.size()) {
      const std::size_t take =
          std::min<std::size_t>(kIoChunk, object.size() - offset);
      egress_limiter_->acquire(take);
      if (!sink.send_all(std::span(object.data() + offset, take)).ok()) {
        return;
      }
      offset += take;
    }
  } else {
    // Cut-through streaming: each chunk is forwarded as soon as received.
    std::uint64_t remaining = len.value();
    while (remaining > 0) {
      const std::size_t take = static_cast<std::size_t>(
          std::min<std::uint64_t>(kIoChunk, remaining));
      ingress_limiter_->acquire(take);
      if (!client.recv_all(std::span(buffer.data(), take)).ok()) return;
      egress_limiter_->acquire(take);
      if (!sink.send_all(std::span(buffer.data(), take)).ok()) return;
      remaining -= take;
    }
  }

  std::uint8_t digest[16];
  if (!sink.recv_all(digest).ok()) return;
  if (!client.send_all(digest).ok()) return;
  objects_relayed_.fetch_add(1);
}

}  // namespace droute::wire
