#include "net/cross_traffic.h"

#include <algorithm>

#include "sim/simulator.h"
#include "util/logging.h"

namespace droute::net {

CrossTrafficSource::CrossTrafficSource(Fabric* fabric, NodeId src, NodeId dst,
                                       CrossTrafficProfile profile,
                                       util::Rng rng)
    : fabric_(fabric), src_(src), dst_(dst), profile_(profile), rng_(rng) {}

void CrossTrafficSource::start() {
  if (running_) return;
  running_ = true;
  schedule_next();
}

void CrossTrafficSource::stop() { running_ = false; }

void CrossTrafficSource::schedule_next() {
  if (!running_) return;
  const double gap = rng_.exponential(profile_.mean_interarrival_s);
  fabric_->simulator()->schedule_in(gap, [this] {
    if (!running_) return;
    const auto size = static_cast<std::uint64_t>(rng_.pareto(
        profile_.pareto_alpha, static_cast<double>(profile_.min_bytes),
        static_cast<double>(profile_.max_bytes)));
    FlowOptions options;
    options.charge_slow_start = true;
    options.app_cap_mbps = profile_.per_flow_cap_mbps;
    options.label = "xtraffic";
    auto flow = fabric_->start_flow(
        src_, dst_, std::max<std::uint64_t>(1, size),
        [this](const FlowStats&) { ++flows_completed_; }, options);
    if (flow.ok()) {
      ++flows_started_;
    } else {
      DROUTE_LOG(kDebug) << "cross-traffic flow rejected: "
                         << flow.error().message;
    }
    schedule_next();
  });
}

}  // namespace droute::net
