// Background cross-traffic generator.
//
// Produces Poisson arrivals of heavy-tailed (bounded-Pareto) flows between a
// fixed node pair. Cross traffic shares links with foreground transfers via
// the fabric's max-min allocator, which is what creates the run-to-run
// variance and file-size-dependent route crossovers of Figs 8/9 (Purdue).
// All randomness comes from a seeded Rng, so campaigns stay reproducible.
#pragma once

#include <cstdint>

#include "net/fabric.h"
#include "util/rng.h"

namespace droute::net {

struct CrossTrafficProfile {
  double mean_interarrival_s = 2.0;
  double pareto_alpha = 1.3;           // heavy tail
  std::uint64_t min_bytes = 256 * 1024;
  std::uint64_t max_bytes = 64ull * 1024 * 1024;
  /// Per-flow application cap; keeps a single elephant from starving
  /// everything (mirrors real background traffic mixes). 0 = uncapped.
  double per_flow_cap_mbps = 0.0;
};

class CrossTrafficSource {
 public:
  CrossTrafficSource(Fabric* fabric, NodeId src, NodeId dst,
                     CrossTrafficProfile profile, util::Rng rng);

  /// Begins generating arrivals (idempotent).
  void start();

  /// Stops generating new arrivals; in-flight flows drain naturally.
  void stop();

  std::uint64_t flows_started() const { return flows_started_; }
  std::uint64_t flows_completed() const { return flows_completed_; }

 private:
  void schedule_next();

  Fabric* fabric_;
  NodeId src_;
  NodeId dst_;
  CrossTrafficProfile profile_;
  util::Rng rng_;
  bool running_ = false;
  std::uint64_t flows_started_ = 0;
  std::uint64_t flows_completed_ = 0;
};

}  // namespace droute::net
