// Flow-level network fabric: fluid flows over the topology with max-min fair
// bandwidth sharing under per-flow TCP caps.
//
// Model. Each flow follows a fixed route (computed at start). At any instant
// every active flow has a rate; rates are the max-min fair allocation given
//   * each link's shared capacity,
//   * each flow's individual cap (TCP window/loss limit, policers,
//     middleboxes — see tcp_model.h).
// The allocation is recomputed at every flow arrival, departure, activation
// and failure (event-driven fluid simulation); between events rates are
// constant, so completions are scheduled exactly.
//
// Slow start is modelled as an activation delay during which the flow
// consumes no bandwidth (conservative for short flows, negligible for bulk).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "net/routing.h"
#include "net/tcp_model.h"
#include "net/topology.h"
#include "sim/simulator.h"
#include "util/result.h"

namespace droute::obs {
class Counter;
class Histogram;
}  // namespace droute::obs

namespace droute::net {

using FlowId = std::uint64_t;

enum class FlowOutcome { kCompleted, kAborted, kLinkFailed };

struct FlowStats {
  FlowId id = 0;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  std::uint64_t bytes = 0;
  sim::Time start_time = 0.0;
  sim::Time end_time = 0.0;
  FlowOutcome outcome = FlowOutcome::kCompleted;
  double rtt_s = 0.0;       // model RTT used for the cap
  double cap_mbps = 0.0;    // per-flow ceiling applied
  Route route;

  double duration_s() const { return end_time - start_time; }
  double achieved_mbps() const {
    return duration_s() > 0.0 ? static_cast<double>(bytes) * 8e-6 / duration_s()
                              : 0.0;
  }
};

struct FlowOptions {
  TcpParams tcp;
  /// Charge the slow-start ramp delay before the flow carries bytes.
  /// Engines reusing a warm connection (later chunks) disable this.
  bool charge_slow_start = true;
  /// Extra per-flow cap in Mbps on top of the TCP model (0 = none) —
  /// e.g. an application-level throttle.
  double app_cap_mbps = 0.0;
  /// Label for debugging and cross-traffic identification.
  std::string label;
};

class Fabric {
 public:
  using CompletionFn = std::function<void(const FlowStats&)>;

  Fabric(sim::Simulator* simulator, Topology* topo, RouteTable* routes);

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  /// The simulator this fabric schedules on (shared with callers that need
  /// to interleave protocol timers with flow completions).
  sim::Simulator* simulator() const { return simulator_; }

  /// Base RTT added to propagation (host stacks, serialization); default 3ms.
  void set_base_rtt_s(double base_rtt) { base_rtt_s_ = base_rtt; }
  double base_rtt_s() const { return base_rtt_s_; }

  /// Model RTT between two nodes along current routes (forward + reverse
  /// propagation + base). Errors if either direction is unroutable.
  [[nodiscard]] util::Result<double> rtt_s(NodeId a, NodeId b) const;

  /// Starts a flow of `bytes` from src to dst; `on_complete` fires exactly
  /// once with the final stats (any outcome). Fails if no route exists.
  [[nodiscard]]
  util::Result<FlowId> start_flow(NodeId src, NodeId dst, std::uint64_t bytes,
                                  CompletionFn on_complete,
                                  FlowOptions options = {});

  /// Aborts an in-flight flow (its callback fires with kAborted).
  /// No-op if the flow already finished.
  void abort_flow(FlowId id);

  /// Disables a link; flows routed over it fail with kLinkFailed and the
  /// route tables are invalidated (new flows re-route around it).
  void fail_link(LinkId link);

  /// Re-enables a previously failed link.
  void restore_link(LinkId link);

  /// Re-derives the max-min allocation immediately. Call after an
  /// out-of-band topology mutation that changes shared capacity (e.g.
  /// Topology::set_link_capacity from a chaos plan): flows keep their
  /// routes and per-flow caps; only the fair shares converge to the new
  /// capacities. A no-op when nothing is active.
  void reallocate_now();

  /// Current allocated rate of a flow in Mbps (0 if pending/unknown).
  double current_rate_mbps(FlowId id) const;

  std::size_t active_flow_count() const { return flows_.size(); }

  /// Total payload bytes fully delivered since construction.
  std::uint64_t delivered_bytes() const { return delivered_bytes_; }

  /// Total payload bytes of every flow ever accepted by start_flow().
  /// Conservation bound audited by check::audit_flow_conservation:
  /// moved_bytes() and delivered_bytes() can never exceed it.
  std::uint64_t submitted_bytes() const { return submitted_bytes_; }

  /// Sum over all flows, finished or not, of bytes actually moved so far.
  /// Used by conservation tests: never exceeds the sum of submitted bytes.
  double moved_bytes() const;

  /// Instantaneous per-link load (observability for congestion analysis).
  struct LinkLoad {
    LinkId link = kInvalidLink;
    double allocated_mbps = 0.0;
    double capacity_mbps = 0.0;
    int flows = 0;

    double utilization() const {
      return capacity_mbps > 0.0 ? allocated_mbps / capacity_mbps : 0.0;
    }
  };

  /// Loads of every link currently carrying at least one active flow.
  std::vector<LinkLoad> link_loads() const;

 private:
  struct Flow {
    FlowStats stats;
    CompletionFn on_complete;
    double remaining_bytes = 0.0;
    double rate_bps = 0.0;   // current allocation, bytes/sec
    double cap_bps = 0.0;    // per-flow ceiling, bytes/sec
    bool activated = false;  // false while in modelled slow start
    sim::EventId activation_event;
  };

  // Moves simulated byte-progress forward to simulator->now().
  void advance_to_now();

  // Recomputes the max-min allocation and reschedules the completion event.
  void reallocate_and_reschedule();

  // Completes/fails `flow` (already removed from flows_) and fires callback.
  void finish(Flow flow, FlowOutcome outcome);

  void on_completion_event();

  sim::Simulator* simulator_;
  Topology* topo_;
  RouteTable* routes_;
  double base_rtt_s_ = 0.003;

  std::map<FlowId, Flow> flows_;  // ordered: deterministic iteration
  FlowId next_flow_id_ = 1;
  sim::Time last_advance_ = 0.0;
  sim::EventId completion_event_;
  std::uint64_t delivered_bytes_ = 0;
  std::uint64_t submitted_bytes_ = 0;
  double finished_moved_bytes_ = 0.0;

  // obs handles (null when recording is disabled at construction).
  obs::Counter* obs_flows_started_ = nullptr;
  obs::Counter* obs_flows_completed_ = nullptr;
  obs::Counter* obs_flows_failed_ = nullptr;
  obs::Counter* obs_flows_policer_capped_ = nullptr;
  obs::Counter* obs_realloc_rounds_ = nullptr;
  obs::Histogram* obs_flow_duration_ = nullptr;
  obs::Histogram* obs_link_utilization_ = nullptr;
};

}  // namespace droute::net
