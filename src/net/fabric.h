// Flow-level network fabric: fluid flows over the topology with max-min fair
// bandwidth sharing under per-flow TCP caps.
//
// Model. Each flow follows a fixed route (computed at start). At any instant
// every active flow has a rate; rates are the max-min fair allocation given
//   * each link's shared capacity,
//   * each flow's individual cap (TCP window/loss limit, policers,
//     middleboxes — see tcp_model.h).
// The allocation is recomputed at every flow arrival, departure, activation
// and failure (event-driven fluid simulation); between events rates are
// constant, so completions are scheduled exactly.
//
// Allocation is *incremental* (DESIGN.md §12): the max-min allocation
// decomposes exactly over connected components of the flow/link sharing
// graph, so each event water-fills only the component(s) reachable from the
// flows it dirtied; every other flow keeps its retained rate. Because the
// per-component fill is a deterministic function of the component's flows
// and links alone, retained rates are bit-identical to what a full
// recomputation would produce — the retained reference path
// (AllocMode::kFullRecompute) re-fills every component from scratch on every
// event, and the differential suite (tests/fabric_equivalence_test.cpp,
// proptest property `fabric_equivalence`) holds the two paths byte-equal.
//
// Because each component's fill is independent, dirty components are also
// embarrassingly parallel *within* one event: AllocMode::kSharded fans the
// per-component water-fills out to a private util::ThreadPool while keeping
// component collection and the advance/re-key merge single-threaded in
// collection order, so event schedules, digests and metrics stay
// byte-identical to the single-threaded modes at any worker count
// (DESIGN.md §16).
//
// Between-event bookkeeping is lazy so untouched flows cost nothing per
// event: byte progress is advanced per flow only when its rate is about to
// change (or it leaves), and completions are scheduled from a min-heap of
// absolute finish times re-keyed only on rate change. Both are keyed off
// "did this flow's rate change bitwise", which the component argument above
// makes identical across the two allocation modes.
//
// Slow start is modelled as an activation delay during which the flow
// consumes no bandwidth (conservative for short flows, negligible for bulk).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/routing.h"
#include "net/tcp_model.h"
#include "net/topology.h"
#include "sim/simulator.h"
#include "util/result.h"

namespace droute::obs {
class Counter;
class Gauge;
class Histogram;
}  // namespace droute::obs

namespace droute::util {
class ThreadPool;
}  // namespace droute::util

namespace droute::net {

using FlowId = std::uint64_t;

enum class FlowOutcome { kCompleted, kAborted, kLinkFailed };

struct FlowStats {
  FlowId id = 0;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  std::uint64_t bytes = 0;
  sim::Time start_time = 0.0;
  sim::Time end_time = 0.0;
  FlowOutcome outcome = FlowOutcome::kCompleted;
  double rtt_s = 0.0;       // model RTT used for the cap
  double cap_mbps = 0.0;    // per-flow ceiling applied
  Route route;

  double duration_s() const { return end_time - start_time; }
  double achieved_mbps() const {
    return duration_s() > 0.0 ? static_cast<double>(bytes) * 8e-6 / duration_s()
                              : 0.0;
  }
};

struct FlowOptions {
  TcpParams tcp;
  /// Charge the slow-start ramp delay before the flow carries bytes.
  /// Engines reusing a warm connection (later chunks) disable this.
  bool charge_slow_start = true;
  /// Extra per-flow cap in Mbps on top of the TCP model (0 = none) —
  /// e.g. an application-level throttle.
  double app_cap_mbps = 0.0;
  /// Label for debugging and cross-traffic identification.
  std::string label;
};

class Fabric {
 public:
  using CompletionFn = std::function<void(const FlowStats&)>;

  /// How each event re-derives the max-min allocation.
  ///   kIncremental    water-fill only the component(s) dirtied by the event;
  ///                   all other flows keep their retained rates (default).
  ///   kFullRecompute  re-fill every component from scratch on every event —
  ///                   the reference the differential suite compares against.
  ///   kSharded        like kIncremental, but the dirty components of each
  ///                   event are water-filled in parallel on a private
  ///                   ThreadPool (shard boundary = sharing component);
  ///                   collection and merge stay single-threaded and ordered,
  ///                   so results are byte-identical to the other modes at
  ///                   any worker count (DESIGN.md §16).
  enum class AllocMode { kIncremental, kFullRecompute, kSharded };

  /// When the DROUTE_SHARD_WORKERS environment variable is a positive
  /// integer N, new fabrics default to AllocMode::kSharded with N workers
  /// (explicit set_alloc_mode/set_shard_workers calls override it). Lets CI
  /// run the whole suite sharded without touching every stack constructor.
  Fabric(sim::Simulator* simulator, Topology* topo, RouteTable* routes);

  ~Fabric();  // out-of-line: owns the (forward-declared) shard pool

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  /// The simulator this fabric schedules on (shared with callers that need
  /// to interleave protocol timers with flow completions).
  sim::Simulator* simulator() const { return simulator_; }

  /// Selects the allocation strategy (see AllocMode). Switching mid-run is
  /// allowed — both modes maintain identical state — but the differential
  /// suite always fixes the mode for a whole scenario.
  void set_alloc_mode(AllocMode mode) { alloc_mode_ = mode; }
  AllocMode alloc_mode() const { return alloc_mode_; }

  /// Worker count for AllocMode::kSharded (>= 1). 1 runs the sharded
  /// batch/merge discipline inline on the simulation thread (no pool);
  /// >= 2 fans component fills out to a private ThreadPool, created lazily
  /// on the first multi-component batch. Worker count can never change
  /// results — only wall-clock time (the determinism contract the
  /// three-mode differential suite enforces).
  void set_shard_workers(int workers);
  int shard_workers() const { return shard_workers_; }

  /// Base RTT added to propagation (host stacks, serialization); default 3ms.
  void set_base_rtt_s(double base_rtt) { base_rtt_s_ = base_rtt; }
  double base_rtt_s() const { return base_rtt_s_; }

  /// Model RTT between two nodes along current routes (forward + reverse
  /// propagation + base). Errors if either direction is unroutable.
  [[nodiscard]] util::Result<double> rtt_s(NodeId a, NodeId b) const;

  /// Starts a flow of `bytes` from src to dst; `on_complete` fires exactly
  /// once with the final stats (any outcome). Fails if no route exists.
  [[nodiscard]]
  util::Result<FlowId> start_flow(NodeId src, NodeId dst, std::uint64_t bytes,
                                  CompletionFn on_complete,
                                  FlowOptions options = {});

  /// Aborts an in-flight flow (its callback fires with kAborted).
  /// No-op if the flow already finished.
  void abort_flow(FlowId id);

  /// Disables a link; flows routed over it fail with kLinkFailed and the
  /// route tables are invalidated (new flows re-route around it).
  void fail_link(LinkId link);

  /// Re-enables a previously failed link.
  void restore_link(LinkId link);

  /// Re-derives the max-min allocation immediately. Call after an
  /// out-of-band topology mutation that changes shared capacity (e.g.
  /// Topology::set_link_capacity from a chaos plan): flows keep their
  /// routes and per-flow caps; only the fair shares converge to the new
  /// capacities. Always falls back to a full recompute (the fabric cannot
  /// see which links were rewritten). With nothing active and no completion
  /// pending it early-outs and only bumps realloc_skipped().
  void reallocate_now();

  /// Times reallocate_now() was skipped because the fabric was idle
  /// (mirrored by the `net.realloc_skipped_total` counter when an obs
  /// recorder is installed).
  std::uint64_t realloc_skipped() const { return realloc_skipped_; }

  /// Current allocated rate of a flow in Mbps (0 if pending/unknown).
  double current_rate_mbps(FlowId id) const;

  std::size_t active_flow_count() const { return live_flows_; }

  /// Total payload bytes fully delivered since construction.
  std::uint64_t delivered_bytes() const { return delivered_bytes_; }

  /// Total payload bytes of every flow ever accepted by start_flow().
  /// Conservation bound audited by check::audit_flow_conservation:
  /// moved_bytes() and delivered_bytes() can never exceed it.
  std::uint64_t submitted_bytes() const { return submitted_bytes_; }

  /// Sum over all flows, finished or not, of bytes actually moved so far.
  /// Used by conservation tests: never exceeds the sum of submitted bytes.
  double moved_bytes() const;

  /// Instantaneous per-link load (observability for congestion analysis).
  struct LinkLoad {
    LinkId link = kInvalidLink;
    double allocated_mbps = 0.0;
    double capacity_mbps = 0.0;
    int flows = 0;

    double utilization() const {
      return capacity_mbps > 0.0 ? allocated_mbps / capacity_mbps : 0.0;
    }
  };

  /// Loads of every link currently carrying at least one active flow.
  std::vector<LinkLoad> link_loads() const;

 private:
  struct Flow {
    FlowStats stats;
    CompletionFn on_complete;
    double remaining_bytes = 0.0;   // as of last_advance_s, not now
    double last_advance_s = 0.0;    // when remaining_bytes was last settled
    double rate_bps = 0.0;   // current allocation, bytes/sec
    double cap_bps = 0.0;    // per-flow ceiling, bytes/sec
    bool activated = false;  // false while in modelled slow start
    sim::EventId activation_event;
    // Position of this flow's entry in each route link's flow list
    // (parallel to stats.route.links); maintained while activated.
    std::vector<std::uint32_t> link_pos;
  };

  /// One dense storage cell; `id == 0` marks a free slot. Slots are reused
  /// LIFO, so slot assignment is deterministic for a given event history.
  struct Slot {
    FlowId id = 0;
    std::uint32_t mark = 0;  // component-BFS visitation epoch
    std::uint64_t gen = 0;   // invalidates stale finish-heap entries
    Flow flow;
  };

  /// Heap record: flow in `slot` finishes at absolute time `finish_s`,
  /// valid only while the slot's generation still equals `gen` (entries are
  /// never erased in place — superseded ones are skipped on pop).
  struct FinishEntry {
    double finish_s = 0.0;
    std::uint32_t slot = 0;
    std::uint64_t gen = 0;
  };
  struct FinishLater {
    bool operator()(const FinishEntry& a, const FinishEntry& b) const {
      return a.finish_s > b.finish_s;
    }
  };

  /// Per-link dense state, indexed by LinkId. `flows` lists every activated
  /// flow crossing the link (one entry per route occurrence); `remaining_bps`
  /// retains the headroom left by the last water-fill that touched the link.
  struct LinkFlowRef {
    std::uint32_t slot = 0;
    std::uint32_t route_idx = 0;  // index into that flow's route.links
  };
  struct LinkState {
    double remaining_bps = 0.0;
    std::int32_t active = 0;  // scratch during a fill round
    std::uint32_t mark = 0;   // component-BFS visitation epoch
    std::vector<LinkFlowRef> flows;
  };

  // Settles `flow`'s byte progress up to now, charging `rate_bps` (its rate
  // since last_advance_s). Called only when the rate changes or the flow
  // leaves — never per event.
  void advance_flow(Flow& flow, double rate_bps) const;

  // remaining_bytes as of now, without mutating (for const queries).
  double live_remaining(const Flow& flow) const;

  // Re-keys `slot`'s finish time from its current rate/remaining: bumps the
  // slot generation (invalidating any queued entry) and pushes a fresh heap
  // entry when the flow has a finite finish.
  void push_finish(std::uint32_t slot);

  // Points completion_event_ at the heap's minimum valid finish time,
  // cancelling/rescheduling only when that minimum changed.
  void resync_completion_event();

  // Inserts/removes an activated flow into/from its links' flow lists.
  void attach_to_links(std::uint32_t slot);
  void detach_from_links(std::uint32_t slot);

  // Collects the connected component reachable from `seed_slot`, appending
  // its flows (plus their pre-fill rates) and links to the batch arrays
  // (epoch-marked; callers bumped epoch_ and push the component offsets).
  void collect_component(std::uint32_t seed_slot);

  // Max-min water-fill over batch component `comp` only, using the given
  // scratch vectors. Returns rounds. Pure per component: in sharded mode it
  // runs on a pool worker and touches only this component's slots_/links_
  // entries (disjoint across components by construction) — never the
  // simulator, the finish heap, or obs.
  std::uint64_t fill_component(std::size_t comp,
                               std::vector<std::uint32_t>& unfrozen,
                               std::vector<std::uint32_t>& still_unfrozen);

  // Water-fills the components reachable from `seeds` (incremental mode) or
  // every component (full mode / force_full) in three phases — serial
  // collect into the batch, per-component fill (parallel when sharded),
  // serial merge in collection order; flows whose rate changed are settled
  // and re-keyed in the finish heap, then the completion event is resynced
  // to the new heap minimum.
  void reallocate_and_reschedule(const std::vector<std::uint32_t>& seeds,
                                 bool force_full = false);

  // Seed helper: every activated flow currently sharing a link with `route`.
  std::vector<std::uint32_t> flows_on_links(const Route& route) const;

  // Completes/fails `flow` (already removed from slots) and fires callback.
  void finish(Flow flow, FlowOutcome outcome);

  void on_completion_event();

  // Removes the slot from storage (and adjacency if activated); returns the
  // flow by value. Does not reallocate.
  Flow extract_flow(std::uint32_t slot);

  std::uint32_t slot_of(FlowId id) const;  // UINT32_MAX when unknown

  sim::Simulator* simulator_;
  Topology* topo_;
  RouteTable* routes_;
  double base_rtt_s_ = 0.003;
  AllocMode alloc_mode_ = AllocMode::kIncremental;
  int shard_workers_ = 1;
  // Private fill pool for kSharded (lazy; sized to shard_workers_).
  std::unique_ptr<util::ThreadPool> shard_pool_;

  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::unordered_map<FlowId, std::uint32_t> slot_index_;
  std::size_t live_flows_ = 0;
  std::vector<LinkState> links_;
  std::uint32_t epoch_ = 0;

  // Fill batch, rebuilt by every reallocation (buffers retained across
  // events): the dirty components in collection order. Component c owns
  // flows[flow_begin[c], flow_begin[c+1]) and links[link_begin[c],
  // link_begin[c+1]); prev_rates parallels flows; rounds[c] is written by
  // the (possibly parallel) fill and read back by the serial merge.
  std::vector<std::uint32_t> batch_flows_;
  std::vector<LinkId> batch_links_;
  std::vector<double> batch_prev_rates_;  // pre-fill rates, ∥ batch_flows_
  std::vector<std::size_t> batch_flow_begin_;
  std::vector<std::size_t> batch_link_begin_;
  std::vector<std::uint64_t> batch_rounds_;
  // Serial-path scratch (parallel fills use per-thread scratch instead).
  std::vector<std::uint32_t> bfs_stack_;
  std::vector<std::uint32_t> unfrozen_;
  std::vector<std::uint32_t> still_unfrozen_;

  FlowId next_flow_id_ = 1;
  std::priority_queue<FinishEntry, std::vector<FinishEntry>, FinishLater>
      finish_heap_;
  // Finish time completion_event_ targets; infinity when none is scheduled.
  sim::Time scheduled_finish_ = sim::kTimeInfinity;
  sim::EventId completion_event_;
  std::uint64_t delivered_bytes_ = 0;
  std::uint64_t submitted_bytes_ = 0;
  double finished_moved_bytes_ = 0.0;
  std::uint64_t realloc_skipped_ = 0;

  // obs handles (null when recording is disabled at construction).
  obs::Counter* obs_flows_started_ = nullptr;
  obs::Counter* obs_flows_completed_ = nullptr;
  obs::Counter* obs_flows_failed_ = nullptr;
  obs::Counter* obs_flows_policer_capped_ = nullptr;
  obs::Counter* obs_realloc_rounds_ = nullptr;
  obs::Counter* obs_realloc_components_ = nullptr;
  obs::Counter* obs_realloc_skipped_ = nullptr;
  obs::Histogram* obs_flow_duration_ = nullptr;
  obs::Histogram* obs_link_utilization_ = nullptr;
  // Shard-boundary diagnostics, recorded in *every* mode from the batch
  // structure alone (identical across modes and worker counts, so metrics
  // CSVs stay byte-identical between single-threaded and sharded runs).
  obs::Counter* obs_shard_batches_ = nullptr;
  obs::Counter* obs_shard_fills_ = nullptr;
  obs::Gauge* obs_shard_batch_components_ = nullptr;
  obs::Histogram* obs_shard_imbalance_ = nullptr;
};

}  // namespace droute::net
