// WAN topology: autonomous systems, nodes (hosts/routers), directed links.
//
// The topology's *shape* is static during a simulation: nodes and links are
// never added or removed. Link attributes may be administratively mutated
// for fault injection — enabled/disabled (triggers re-routing), capacity and
// policer rewrites (chaos::Injector; callers must poke
// Fabric::reallocate_now() so in-flight allocations converge). All dynamic
// state (flows, allocations) lives in net::Fabric.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "geo/geo.h"
#include "geo/registry.h"
#include "util/result.h"

namespace droute::net {

using NodeId = std::int32_t;
using LinkId = std::int32_t;
using AsId = std::int32_t;

inline constexpr NodeId kInvalidNode = -1;
inline constexpr LinkId kInvalidLink = -1;
inline constexpr AsId kInvalidAs = -1;

enum class NodeKind { kHost, kRouter };

/// Business relationship of an inter-AS adjacency, seen from the first AS.
enum class AsRelation {
  kCustomer,  // the other AS is our customer (we are paid to carry)
  kPeer,      // settlement-free peer
  kProvider,  // the other AS is our transit provider (we pay)
};

struct Node {
  NodeId id = kInvalidNode;
  std::string name;          // DNS-style name, e.g. "vncv1rtr2.canarie.ca"
  AsId as_id = kInvalidAs;
  NodeKind kind = NodeKind::kRouter;
  geo::Coord coord;
  geo::Ipv4 ip;              // assigned by Topology::Builder
  std::string tag;           // policy tag, e.g. "planetlab" (see routing.h)
  // Science-DMZ-style middlebox: per-flow throughput ceiling for traffic
  // traversing (not originating at) this node. 0 = no middlebox.
  double middlebox_per_flow_mbps = 0.0;
};

struct As {
  AsId id = kInvalidAs;
  std::string name;  // e.g. "CANARIE", "PacificWave", "GoogleAS"
};

struct Link {
  LinkId id = kInvalidLink;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  double capacity_mbps = 0.0;   // shared fluid capacity
  double prop_delay_s = 0.0;    // one-way propagation
  double loss_rate = 0.0;       // stationary packet-loss probability
  // Per-flow policer (token bucket steady rate) applied to each flow that
  // crosses this link, independent of fair share. 0 = none. This is the
  // "rate-limited middlebox hop" hypothesis of Sec III-D (pacificwave).
  double policer_per_flow_mbps = 0.0;
  bool enabled = true;          // failure injection switch
};

class Topology {
 public:
  class Builder;

  const Node& node(NodeId id) const { return nodes_.at(static_cast<std::size_t>(id)); }
  const Link& link(LinkId id) const { return links_.at(static_cast<std::size_t>(id)); }
  const As& as_info(AsId id) const { return ases_.at(static_cast<std::size_t>(id)); }

  std::size_t node_count() const { return nodes_.size(); }
  std::size_t link_count() const { return links_.size(); }
  std::size_t as_count() const { return ases_.size(); }

  /// Links leaving `node` (includes disabled links; callers filter).
  const std::vector<LinkId>& out_links(NodeId node) const {
    return out_links_.at(static_cast<std::size_t>(node));
  }

  /// Finds the enabled link src->dst, if any.
  std::optional<LinkId> find_link(NodeId src, NodeId dst) const;

  std::optional<NodeId> find_node(const std::string& name) const;

  /// AS-relationship of the adjacency first->second, if declared.
  std::optional<AsRelation> relation(AsId first, AsId second) const;

  /// All declared AS adjacencies as (first, second, relation-of-second-to-first).
  struct AsAdjacency {
    AsId first;
    AsId second;
    AsRelation rel;  // what `second` is to `first`
  };
  const std::vector<AsAdjacency>& as_adjacencies() const { return as_adj_; }

  /// Administrative link control for failure injection. Affects new route
  /// computations; Fabric additionally kills flows on disabled links.
  [[nodiscard]] util::Status set_link_enabled(LinkId id, bool enabled);

  /// Adjusts a node's per-flow middlebox ceiling at runtime (ablations:
  /// Science-DMZ firewall on/off). Affects flows started afterwards.
  [[nodiscard]] util::Status set_middlebox(NodeId id, double per_flow_mbps);

  /// Rewrites a link's shared capacity at runtime (chaos injection: brownout
  /// / upgrade). Requires a positive rate. Active flows keep their routes;
  /// call Fabric::reallocate_now() afterwards so fair shares converge.
  [[nodiscard]] util::Status set_link_capacity(LinkId id, double capacity_mbps);

  /// Rewrites a link's per-flow policer rate at runtime (0 clears it).
  /// Affects flow caps computed afterwards; in-flight flows keep theirs.
  [[nodiscard]] util::Status set_link_policer(LinkId id, double per_flow_mbps);

  /// Topology-wide sanity checks (ids consistent, links connect declared
  /// nodes, inter-AS links have a declared relationship, etc).
  [[nodiscard]] util::Status validate() const;

  /// Geolocation registry populated with every node (name + IP bound).
  const geo::Registry& registry() const { return registry_; }

 private:
  friend class Builder;
  std::vector<Node> nodes_;
  std::vector<Link> links_;
  std::vector<As> ases_;
  std::vector<std::vector<LinkId>> out_links_;
  std::vector<AsAdjacency> as_adj_;
  geo::Registry registry_;
};

/// Optional per-link attributes (see Link for semantics).
struct LinkOpts {
  double loss_rate = 0.0;
  double policer_per_flow_mbps = 0.0;
};

/// Fluent construction with automatic IP assignment (10.x.y.z by AS) and
/// registry population. Build() validates.
class Topology::Builder {
 public:
  Builder() = default;

  AsId add_as(const std::string& name);

  /// Declares what `b` is to `a` (and records the converse implicitly:
  /// customer<->provider are duals; peer is symmetric).
  Builder& relate(AsId a, AsId b, AsRelation b_is_to_a);

  NodeId add_router(AsId as, const std::string& name, geo::Coord coord,
                    const std::string& city = "");
  NodeId add_host(AsId as, const std::string& name, geo::Coord coord,
                  const std::string& city = "", const std::string& tag = "");

  /// Sets the per-flow middlebox ceiling on an existing node.
  Builder& middlebox(NodeId node, double per_flow_mbps);

  /// One directed link.
  LinkId add_link(NodeId src, NodeId dst, double capacity_mbps,
                  double prop_delay_s, LinkOpts opts = {});

  /// Two directed links with identical parameters; returns forward id.
  LinkId add_duplex(NodeId a, NodeId b, double capacity_mbps,
                    double prop_delay_s, LinkOpts opts = {});

  /// Duplex link with propagation delay derived from the endpoints' geo
  /// coordinates (great-circle x inflation).
  LinkId add_duplex_geo(NodeId a, NodeId b, double capacity_mbps,
                        LinkOpts opts = {});

  [[nodiscard]] util::Result<Topology> build() &&;

 private:
  NodeId add_node(AsId as, const std::string& name, NodeKind kind,
                  geo::Coord coord, const std::string& city,
                  const std::string& tag);

  Topology topo_;
  std::vector<std::uint32_t> next_host_in_as_;
};

}  // namespace droute::net
