// Two-level WAN routing.
//
// Level 1 — inter-domain, "BGP-lite": per destination AS, every AS selects a
// best route following standard policy routing:
//   * Gao–Rexford export rules (routes learned from customers are exported to
//     everybody; routes learned from peers/providers only to customers),
//   * selection preference customer > peer > provider, then shortest AS path,
//     then lowest next-hop AS id (deterministic tie-break).
// The resulting AS paths are valley-free by construction.
//
// Level 2 — node-level expansion: the AS path is expanded to a concrete
// node/link path by choosing, per AS hop, the egress gateway link that
// minimizes intra-AS propagation delay, with intra-AS segments routed by
// Dijkstra over link delay.
//
// Source-tag egress overrides model the paper's central routing artifact:
// traffic from PlanetLab-tagged sources is forced out a different egress
// (the policed PacificWave hop of Fig 5) than other traffic at the same
// router (the direct peering of Fig 6). An override may change the next AS;
// expansion then re-consults BGP from the forced link's far end.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "net/topology.h"
#include "util/result.h"

namespace droute::net {

/// A concrete forwarding path: nodes.size() == links.size() + 1.
struct Route {
  std::vector<NodeId> nodes;
  std::vector<LinkId> links;

  bool valid() const {
    return !nodes.empty() && nodes.size() == links.size() + 1;
  }
};

/// Policy-routing exception installed at one router. A source matches when
/// its tag equals `src_tag` (if set) OR its address falls inside
/// `src_prefix`/`src_prefix_bits` (if prefix_bits > 0) — real policy routing
/// matches on source prefixes; tags are the scenario-authoring shorthand.
struct EgressOverride {
  NodeId at = kInvalidNode;     // router applying the policy
  std::string src_tag;          // matches Node::tag of the flow source
  geo::Ipv4 src_prefix{};       // alternative matcher: source address prefix
  int src_prefix_bits = 0;      // 0 = prefix matching disabled
  AsId dst_as = kInvalidAs;     // destination AS the policy applies to
  LinkId use_link = kInvalidLink;  // forced egress link from `at`

  bool matches_source(const Node& source) const;
};

/// How an AS learned its best route toward a destination (selection order).
enum class RouteOrigin : std::uint8_t {
  kSelf = 0,      // destination is in this AS
  kCustomer = 1,  // learned from a customer
  kPeer = 2,      // learned from a peer
  kProvider = 3,  // learned from a provider
};

class RouteTable {
 public:
  explicit RouteTable(const Topology* topo) : topo_(topo) {}

  /// Installs a policy-routing exception (see EgressOverride).
  void add_override(EgressOverride ov);

  /// Best AS-level path src_as -> dst_as (inclusive), or error if the policy
  /// graph offers no valley-free route.
  [[nodiscard]]
  util::Result<std::vector<AsId>> as_path(AsId src_as, AsId dst_as) const;

  /// How `as` learned its route toward `dst_as` (for route inspection).
  [[nodiscard]]
  util::Result<RouteOrigin> route_origin(AsId as, AsId dst_as) const;

  /// Concrete node/link route from `src` to `dst`. Honors the source node's
  /// policy tag for egress overrides. Cached; call invalidate() after any
  /// set_link_enabled().
  [[nodiscard]] util::Result<Route> route(NodeId src, NodeId dst) const;

  /// Drops all cached routes and BGP tables (topology changed).
  void invalidate();

  /// One-way propagation delay along a route (sum of link delays).
  double one_way_delay_s(const Route& route) const;

  /// End-to-end stationary loss probability along a route.
  double path_loss(const Route& route) const;

  /// Most restrictive per-flow policer on the route (0 = none).
  double min_policer_mbps(const Route& route) const;

  /// Most restrictive traversed middlebox per-flow ceiling (0 = none).
  /// Endpoints do not count: a middlebox constrains traffic *through* it.
  double min_middlebox_mbps(const Route& route) const;

  /// Raw capacity of the narrowest link (the no-contention rate bound).
  double bottleneck_capacity_mbps(const Route& route) const;

 private:
  struct BgpEntry {
    bool reachable = false;
    RouteOrigin origin = RouteOrigin::kSelf;
    std::uint32_t path_len = 0;  // number of AS hops to destination
    AsId next_as = kInvalidAs;
  };

  // Per destination AS: entry for every AS. Built on demand.
  const std::vector<BgpEntry>& bgp_table(AsId dst_as) const;

  // Dijkstra by delay within one AS over enabled links.
  [[nodiscard]]
  util::Result<Route> intra_as_route(NodeId src, NodeId dst) const;

  // Cheapest enabled inter-AS link from AS `from` into AS `to`, measured as
  // (intra-AS delay from `cur` to link.src) + link delay. Returns the link
  // and the intra-AS route reaching it.
  struct GatewayChoice {
    LinkId link = kInvalidLink;
    Route approach;  // cur .. link.src
  };
  [[nodiscard]]
  util::Result<GatewayChoice> pick_gateway(NodeId cur, AsId to) const;

  const Topology* topo_;
  std::vector<EgressOverride> overrides_;
  mutable std::map<AsId, std::vector<BgpEntry>> bgp_cache_;
  mutable std::map<std::tuple<NodeId, NodeId>, Route> route_cache_;
};

}  // namespace droute::net
