#include "net/routing.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <set>

#include "check/contract.h"

namespace droute::net {

namespace {

/// (preference-class, path-length, next-hop id) lexicographic candidate.
struct Candidate {
  std::uint32_t len = 0;
  AsId next_as = kInvalidAs;
  bool set = false;

  bool better_than(const Candidate& other) const {
    if (!other.set) return set;
    if (!set) return false;
    if (len != other.len) return len < other.len;
    return next_as < other.next_as;
  }
};

}  // namespace

bool EgressOverride::matches_source(const Node& source) const {
  if (!src_tag.empty() && source.tag == src_tag) return true;
  if (src_prefix_bits > 0) {
    const std::uint32_t mask =
        src_prefix_bits >= 32
            ? ~std::uint32_t{0}
            : ~std::uint32_t{0} << (32 - src_prefix_bits);
    if ((source.ip.value & mask) == (src_prefix.value & mask)) return true;
  }
  return false;
}

void RouteTable::add_override(EgressOverride ov) {
  overrides_.push_back(std::move(ov));
  route_cache_.clear();
}

void RouteTable::invalidate() {
  bgp_cache_.clear();
  route_cache_.clear();
}

// ---------------------------------------------------------------------------
// BGP-lite: per-destination table built with the classic three-phase
// customer/peer/provider computation, which yields exactly the routes BGP
// selects under Gao–Rexford export rules (see routing.h).

const std::vector<RouteTable::BgpEntry>& RouteTable::bgp_table(
    AsId dst_as) const {
  auto it = bgp_cache_.find(dst_as);
  if (it != bgp_cache_.end()) return it->second;

  const std::size_t n = topo_->as_count();
  std::vector<Candidate> customer(n), peer(n), provider(n);

  // Adjacency lists by relationship, as seen from the learner:
  //   learns_from_customer[y] = {x : x is y's customer}
  //   learns_from_peer[y]     = {x : x is y's peer}
  //   learns_from_provider[y] = {x : x is y's provider}
  std::vector<std::vector<AsId>> from_customer(n), from_peer(n),
      from_provider(n);
  for (const auto& adj : topo_->as_adjacencies()) {
    const auto y = static_cast<std::size_t>(adj.first);
    switch (adj.rel) {
      case AsRelation::kCustomer: from_customer[y].push_back(adj.second); break;
      case AsRelation::kPeer:     from_peer[y].push_back(adj.second); break;
      case AsRelation::kProvider: from_provider[y].push_back(adj.second); break;
    }
  }
  for (auto& v : from_customer) std::sort(v.begin(), v.end());
  for (auto& v : from_peer) std::sort(v.begin(), v.end());
  for (auto& v : from_provider) std::sort(v.begin(), v.end());

  // Phase 1 — customer routes: announcements climb customer->provider chains.
  // BFS from the destination; y learns from its customer x.
  {
    std::queue<AsId> frontier;
    customer[static_cast<std::size_t>(dst_as)] = {0, dst_as, true};
    frontier.push(dst_as);
    while (!frontier.empty()) {
      const AsId x = frontier.front();
      frontier.pop();
      const Candidate& cx = customer[static_cast<std::size_t>(x)];
      for (std::size_t y = 0; y < n; ++y) {
        // Does y learn from customer x?
        const auto& learners = from_customer[y];
        if (!std::binary_search(learners.begin(), learners.end(), x)) continue;
        Candidate cand{cx.len + 1, x, true};
        if (cand.better_than(customer[y])) {
          const bool first_time = !customer[y].set;
          customer[y] = cand;
          if (first_time) frontier.push(static_cast<AsId>(y));
        }
      }
    }
  }

  // Phase 2 — peer routes: exactly one peer edge atop a customer route.
  for (std::size_t y = 0; y < n; ++y) {
    for (AsId x : from_peer[y]) {
      const Candidate& cx = customer[static_cast<std::size_t>(x)];
      if (!cx.set) continue;  // peers only export self/customer routes
      Candidate cand{cx.len + 1, x, true};
      if (cand.better_than(peer[y])) peer[y] = cand;
    }
  }

  // Phase 3 — provider routes: providers export their *selected* route to
  // customers; selection prefers customer > peer > provider. Dijkstra over
  // "down" edges seeded with each AS's customer/peer selection.
  {
    auto selected_len = [&](std::size_t x) -> std::optional<std::uint32_t> {
      if (customer[x].set) return customer[x].len;
      if (peer[x].set) return peer[x].len;
      if (provider[x].set) return provider[x].len;
      return std::nullopt;
    };
    using QItem = std::tuple<std::uint32_t, AsId>;  // (exported len, exporter)
    std::priority_queue<QItem, std::vector<QItem>, std::greater<>> pq;
    for (std::size_t x = 0; x < n; ++x) {
      if (auto len = selected_len(x)) pq.emplace(*len, static_cast<AsId>(x));
    }
    while (!pq.empty()) {
      const auto [len, x] = pq.top();
      pq.pop();
      const auto sel = selected_len(static_cast<std::size_t>(x));
      if (!sel || *sel != len) continue;  // stale queue entry
      for (std::size_t y = 0; y < n; ++y) {
        const auto& provs = from_provider[y];
        if (!std::binary_search(provs.begin(), provs.end(), x)) continue;
        Candidate cand{len + 1, x, true};
        if (cand.better_than(provider[y]) && !customer[y].set && !peer[y].set) {
          provider[y] = cand;
          pq.emplace(cand.len, static_cast<AsId>(y));
        }
      }
    }
  }

  std::vector<BgpEntry> table(n);
  for (std::size_t x = 0; x < n; ++x) {
    BgpEntry& e = table[x];
    if (static_cast<AsId>(x) == dst_as) {
      e = {true, RouteOrigin::kSelf, 0, dst_as};
    } else if (customer[x].set) {
      e = {true, RouteOrigin::kCustomer, customer[x].len, customer[x].next_as};
    } else if (peer[x].set) {
      e = {true, RouteOrigin::kPeer, peer[x].len, peer[x].next_as};
    } else if (provider[x].set) {
      e = {true, RouteOrigin::kProvider, provider[x].len, provider[x].next_as};
    }
  }
  return bgp_cache_.emplace(dst_as, std::move(table)).first->second;
}

util::Result<std::vector<AsId>> RouteTable::as_path(AsId src_as,
                                                    AsId dst_as) const {
  const auto& table = bgp_table(dst_as);
  std::vector<AsId> path;
  AsId cur = src_as;
  for (std::size_t guard = 0; guard <= topo_->as_count(); ++guard) {
    path.push_back(cur);
    if (cur == dst_as) return path;
    const BgpEntry& entry = table[static_cast<std::size_t>(cur)];
    if (!entry.reachable) {
      return util::Error::make("no valley-free AS route from " +
                               topo_->as_info(src_as).name + " to " +
                               topo_->as_info(dst_as).name);
    }
    cur = entry.next_as;
  }
  return util::Error::make("AS path loop (policy bug)");
}

util::Result<RouteOrigin> RouteTable::route_origin(AsId as, AsId dst_as) const {
  const auto& table = bgp_table(dst_as);
  const BgpEntry& entry = table.at(static_cast<std::size_t>(as));
  if (!entry.reachable) return util::Error::make("unreachable");
  return entry.origin;
}

// ---------------------------------------------------------------------------
// Node-level expansion.

util::Result<Route> RouteTable::intra_as_route(NodeId src, NodeId dst) const {
  const AsId as = topo_->node(src).as_id;
  DROUTE_CHECK(topo_->node(dst).as_id == as, "intra_as_route across ASes");
  if (src == dst) return Route{{src}, {}};

  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(topo_->node_count(), kInf);
  std::vector<LinkId> via(topo_->node_count(), kInvalidLink);
  using QItem = std::tuple<double, NodeId>;
  std::priority_queue<QItem, std::vector<QItem>, std::greater<>> pq;
  dist[static_cast<std::size_t>(src)] = 0.0;
  pq.emplace(0.0, src);
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[static_cast<std::size_t>(u)]) continue;
    if (u == dst) break;
    for (LinkId lid : topo_->out_links(u)) {
      const Link& l = topo_->link(lid);
      if (!l.enabled || topo_->node(l.dst).as_id != as) continue;
      const double nd = d + l.prop_delay_s;
      if (nd < dist[static_cast<std::size_t>(l.dst)]) {
        dist[static_cast<std::size_t>(l.dst)] = nd;
        via[static_cast<std::size_t>(l.dst)] = lid;
        pq.emplace(nd, l.dst);
      }
    }
  }
  if (via[static_cast<std::size_t>(dst)] == kInvalidLink) {
    return util::Error::make("intra-AS partition: " + topo_->node(src).name +
                             " -/-> " + topo_->node(dst).name);
  }
  Route route;
  NodeId cur = dst;
  std::vector<LinkId> rev_links;
  while (cur != src) {
    const LinkId lid = via[static_cast<std::size_t>(cur)];
    rev_links.push_back(lid);
    cur = topo_->link(lid).src;
  }
  route.nodes.push_back(src);
  for (auto it = rev_links.rbegin(); it != rev_links.rend(); ++it) {
    route.links.push_back(*it);
    route.nodes.push_back(topo_->link(*it).dst);
  }
  return route;
}

util::Result<RouteTable::GatewayChoice> RouteTable::pick_gateway(
    NodeId cur, AsId to) const {
  const AsId from = topo_->node(cur).as_id;
  GatewayChoice best;
  double best_cost = std::numeric_limits<double>::infinity();
  for (std::size_t lid = 0; lid < topo_->link_count(); ++lid) {
    const Link& l = topo_->link(static_cast<LinkId>(lid));
    if (!l.enabled) continue;
    if (topo_->node(l.src).as_id != from || topo_->node(l.dst).as_id != to) {
      continue;
    }
    auto approach = intra_as_route(cur, l.src);
    if (!approach.ok()) continue;
    double cost = l.prop_delay_s;
    for (LinkId alid : approach.value().links) {
      cost += topo_->link(alid).prop_delay_s;
    }
    if (cost < best_cost) {
      best_cost = cost;
      best.link = static_cast<LinkId>(lid);
      best.approach = std::move(approach).value();
    }
  }
  if (best.link == kInvalidLink) {
    return util::Error::make("no enabled gateway from AS " +
                             topo_->as_info(from).name + " to AS " +
                             topo_->as_info(to).name);
  }
  return best;
}

util::Result<Route> RouteTable::route(NodeId src, NodeId dst) const {
  const auto key = std::make_tuple(src, dst);
  if (auto it = route_cache_.find(key); it != route_cache_.end()) {
    return it->second;
  }

  const AsId dst_as = topo_->node(dst).as_id;

  Route out;
  out.nodes.push_back(src);
  NodeId cur = src;
  std::set<std::size_t> fired_overrides;

  auto append_segment = [&](const Route& seg) {
    DROUTE_CHECK(seg.nodes.front() == cur, "segment does not start at cursor");
    for (std::size_t i = 0; i < seg.links.size(); ++i) {
      out.links.push_back(seg.links[i]);
      out.nodes.push_back(seg.nodes[i + 1]);
    }
    cur = out.nodes.back();
  };

  for (int guard = 0; guard < 64; ++guard) {
    if (cur == dst) {
      route_cache_.emplace(key, out);
      return out;
    }
    const AsId cur_as = topo_->node(cur).as_id;

    // Source-tag policy overrides: fire when traffic with a matching tag is
    // inside the override router's AS and heading for the matching dst AS.
    bool overridden = false;
    for (std::size_t i = 0; i < overrides_.size(); ++i) {
      const EgressOverride& ov = overrides_[i];
      if (fired_overrides.contains(i)) continue;
      if (ov.dst_as != dst_as || !ov.matches_source(topo_->node(src))) {
        continue;
      }
      if (topo_->node(ov.at).as_id != cur_as) continue;
      const Link& forced = topo_->link(ov.use_link);
      if (!forced.enabled) continue;
      DROUTE_CHECK(forced.src == ov.at, "override link must leave its router");
      auto approach = intra_as_route(cur, ov.at);
      if (!approach.ok()) continue;
      fired_overrides.insert(i);
      append_segment(approach.value());
      out.links.push_back(forced.id);
      out.nodes.push_back(forced.dst);
      cur = forced.dst;
      overridden = true;
      break;
    }
    if (overridden) continue;

    if (cur_as == dst_as) {
      auto seg = intra_as_route(cur, dst);
      if (!seg.ok()) return util::Error{seg.error()};
      append_segment(seg.value());
      continue;  // loop head returns via cur == dst
    }

    auto asp = as_path(cur_as, dst_as);
    if (!asp.ok()) return util::Error{asp.error()};
    const AsId next_as = asp.value()[1];
    auto gw = pick_gateway(cur, next_as);
    if (!gw.ok()) return util::Error{gw.error()};
    append_segment(gw.value().approach);
    const Link& egress = topo_->link(gw.value().link);
    out.links.push_back(egress.id);
    out.nodes.push_back(egress.dst);
    cur = egress.dst;
  }
  return util::Error::make("route expansion exceeded 64 AS hops (loop?)");
}

double RouteTable::one_way_delay_s(const Route& route) const {
  double total = 0.0;
  for (LinkId lid : route.links) total += topo_->link(lid).prop_delay_s;
  return total;
}

double RouteTable::path_loss(const Route& route) const {
  double pass = 1.0;
  for (LinkId lid : route.links) pass *= 1.0 - topo_->link(lid).loss_rate;
  return 1.0 - pass;
}

double RouteTable::min_policer_mbps(const Route& route) const {
  double min_rate = 0.0;
  for (LinkId lid : route.links) {
    const double p = topo_->link(lid).policer_per_flow_mbps;
    if (p > 0.0 && (min_rate == 0.0 || p < min_rate)) min_rate = p;
  }
  return min_rate;
}

double RouteTable::min_middlebox_mbps(const Route& route) const {
  double min_rate = 0.0;
  for (std::size_t i = 1; i + 1 < route.nodes.size(); ++i) {
    const double m = topo_->node(route.nodes[i]).middlebox_per_flow_mbps;
    if (m > 0.0 && (min_rate == 0.0 || m < min_rate)) min_rate = m;
  }
  return min_rate;
}

double RouteTable::bottleneck_capacity_mbps(const Route& route) const {
  double min_cap = std::numeric_limits<double>::infinity();
  for (LinkId lid : route.links) {
    min_cap = std::min(min_cap, topo_->link(lid).capacity_mbps);
  }
  return route.links.empty() ? 0.0 : min_cap;
}

}  // namespace droute::net
