// Plain-text topology format: lets downstream users define their own WANs
// (and lets tests golden-check the built-in scenario) without recompiling.
//
// Line-based, '#' comments, whitespace-separated tokens:
//
//   as <name>
//   relate <as> customer|peer|provider <as>     # what the 2nd AS is to the 1st
//   node <name> host|router <as> <lat> <lon> [city="..."] [tag=...]
//        [middlebox=<mbps>]
//   link <src> <dst> cap=<mbps> delay_ms=<ms> [loss=<p>] [policer=<mbps>]
//        [duplex]
//
// Decoding is strict: unknown directives, dangling names, malformed numbers
// and constraint violations (via Topology::Builder / validate()) all fail
// with a line-numbered error.
#pragma once

#include <string>

#include "net/topology.h"
#include "util/result.h"

namespace droute::net {

/// Parses a topology document. Errors carry the offending line number.
[[nodiscard]] util::Result<Topology> parse_topology(const std::string& text);

/// Serializes a topology to the same format (round-trips through
/// parse_topology up to floating-point rendering).
std::string serialize_topology(const Topology& topo);

}  // namespace droute::net
