// Coroutine adapter for the fabric: awaiting a TransferAwaitable suspends a
// sim::Task until the flow completes and yields util::Result<FlowStats> —
// letting multi-leg transfer scripts read sequentially instead of as
// callback chains (the transfer/ engines are written this way).
//
// Usage (note the named local):
//
//   auto leg = net::transfer(fabric, src, dst, bytes);
//   const auto stats = co_await leg;     // util::Result<net::FlowStats>
//   if (!stats.ok()) ...                 // synchronous rejection reason
//
// A flow that runs carries its fate in FlowStats::outcome (completed /
// aborted / link failed); only flows the fabric refuses to start at all
// surface as an error Result. Cancelling the awaiting task aborts the
// in-flight flow, which resumes the task with outcome kAborted.
//
// The awaitable is deliberately *lvalue-only* (every awaiter method is
// &-qualified): GCC 12 miscompiles temporaries awaited directly in a
// co_await expression (double destruction of the temporary frame slot,
// GCC PR 99576 family), so `co_await transfer(...)` is rejected at compile
// time instead of corrupting the heap at run time.
#pragma once

#include <coroutine>
#include <optional>
#include <type_traits>

#include "net/fabric.h"
#include "sim/task.h"
#include "util/result.h"

namespace droute::net {

class TransferAwaitable {
 public:
  // Flow ids start at 1 (Fabric::next_flow_id_), so 0 is "no flow".
  static constexpr FlowId kNoFlow = 0;

  TransferAwaitable(Fabric& fabric, NodeId src, NodeId dst,
                    std::uint64_t bytes, FlowOptions options = {})
      : fabric_(&fabric), src_(src), dst_(dst), bytes_(bytes),
        options_(std::move(options)) {}

  bool await_ready() const& noexcept { return false; }

  template <typename Promise>
  bool await_suspend(std::coroutine_handle<Promise> handle) & {
    if constexpr (std::is_base_of_v<sim::TaskPromiseBase, Promise>) {
      if (handle.promise().cancel_requested()) {
        // Task already cancelled: do not put bytes on the wire.
        error_ = util::Error::make("transfer cancelled before start",
                                   sim::kErrCancelled);
        return false;  // resume immediately
      }
    }
    auto flow = fabric_->start_flow(
        src_, dst_, bytes_,
        [this, handle](const FlowStats& stats) {
          flow_id_ = kNoFlow;
          stats_ = stats;
          if constexpr (std::is_base_of_v<sim::TaskPromiseBase, Promise>) {
            handle.promise().disarm_canceller();
          }
          handle.resume();
        },
        options_);
    if (!flow.ok()) {
      // Flow rejected synchronously: resume immediately with the reason.
      error_ = flow.error();
      return false;  // do not suspend
    }
    flow_id_ = flow.value();
    if constexpr (std::is_base_of_v<sim::TaskPromiseBase, Promise>) {
      // Cancelling the task aborts the flow; abort fires the completion
      // callback synchronously with kAborted, resuming the task.
      handle.promise().arm_canceller(
          [this] { fabric_->abort_flow(flow_id_); });
    }
    return true;
  }

  /// The flow's stats (any outcome), or the synchronous rejection reason.
  [[nodiscard]] util::Result<FlowStats> await_resume() const& {
    if (stats_.has_value()) return *stats_;
    return error_;
  }

 private:
  Fabric* fabric_;
  NodeId src_;
  NodeId dst_;
  std::uint64_t bytes_;
  FlowOptions options_;
  FlowId flow_id_ = kNoFlow;
  std::optional<FlowStats> stats_;
  util::Error error_;
};

/// Builds a transfer awaitable; bind it to a local, then co_await it.
inline TransferAwaitable transfer(Fabric& fabric, NodeId src, NodeId dst,
                                  std::uint64_t bytes,
                                  FlowOptions options = {}) {
  return TransferAwaitable(fabric, src, dst, bytes, std::move(options));
}

}  // namespace droute::net
