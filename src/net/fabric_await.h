// Coroutine adapter for the fabric: awaiting a TransferAwaitable suspends a
// sim::Process until the flow completes and yields its FlowStats — letting
// multi-leg transfer scripts read sequentially instead of as callback
// chains (see tests/coroutine_test.cpp for a two-leg detour written
// this way).
//
// Usage (note the named local):
//
//   auto leg = net::transfer(fabric, src, dst, bytes);
//   auto stats = co_await leg;
//
// The awaitable is deliberately *lvalue-only* (every awaiter method is
// &-qualified): GCC 12 miscompiles temporaries awaited directly in a
// co_await expression (double destruction of the temporary frame slot,
// GCC PR 99576 family), so `co_await transfer(...)` is rejected at compile
// time instead of corrupting the heap at run time.
#pragma once

#include <coroutine>
#include <optional>

#include "net/fabric.h"
#include "sim/process.h"

namespace droute::net {

class TransferAwaitable {
 public:
  TransferAwaitable(Fabric& fabric, NodeId src, NodeId dst,
                    std::uint64_t bytes, FlowOptions options = {})
      : fabric_(&fabric), src_(src), dst_(dst), bytes_(bytes),
        options_(std::move(options)) {}

  bool await_ready() const& noexcept { return false; }

  bool await_suspend(std::coroutine_handle<> handle) & {
    auto flow = fabric_->start_flow(
        src_, dst_, bytes_,
        [this, handle](const FlowStats& stats) {
          stats_ = stats;
          handle.resume();
        },
        options_);
    if (!flow.ok()) {
      // Flow rejected synchronously: resume immediately with no stats.
      error_ = flow.error().message;
      return false;  // do not suspend
    }
    return true;
  }

  /// The completed flow's stats, or nullopt when the flow was rejected
  /// (check error() for the reason).
  std::optional<FlowStats> await_resume() const& { return stats_; }

  const std::string& error() const { return error_; }

 private:
  Fabric* fabric_;
  NodeId src_;
  NodeId dst_;
  std::uint64_t bytes_;
  FlowOptions options_;
  std::optional<FlowStats> stats_;
  std::string error_;
};

/// Builds a transfer awaitable; bind it to a local, then co_await it.
inline TransferAwaitable transfer(Fabric& fabric, NodeId src, NodeId dst,
                                  std::uint64_t bytes,
                                  FlowOptions options = {}) {
  return TransferAwaitable(fabric, src, dst, bytes, std::move(options));
}

}  // namespace droute::net
