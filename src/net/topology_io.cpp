#include "net/topology_io.h"

#include <cstdio>
#include <map>
#include <sstream>
#include <vector>

#include "util/units.h"

namespace droute::net {

namespace {

util::Error line_error(int line, const std::string& message) {
  return util::Error::make("line " + std::to_string(line) + ": " + message);
}

/// Splits a line into tokens, honouring double-quoted strings (quotes are
/// stripped; they may appear inside key="..." values).
std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::string current;
  bool in_quotes = false;
  bool token_open = false;
  for (char c : line) {
    if (c == '#' && !in_quotes) break;
    if (c == '"') {
      in_quotes = !in_quotes;
      token_open = true;
      continue;
    }
    if (!in_quotes && (c == ' ' || c == '\t')) {
      if (token_open) {
        tokens.push_back(current);
        current.clear();
        token_open = false;
      }
      continue;
    }
    current.push_back(c);
    token_open = true;
  }
  if (token_open) tokens.push_back(current);
  return tokens;
}

bool parse_double(const std::string& token, double* out) {
  char tail = 0;
  return std::sscanf(token.c_str(), "%lf%c", out, &tail) == 1;
}

/// Splits "key=value" -> (key, value); plain flags yield (token, "").
std::pair<std::string, std::string> split_kv(const std::string& token) {
  const auto eq = token.find('=');
  if (eq == std::string::npos) return {token, ""};
  return {token.substr(0, eq), token.substr(eq + 1)};
}

}  // namespace

util::Result<Topology> parse_topology(const std::string& text) {
  Topology::Builder builder;
  std::map<std::string, AsId> ases;
  std::map<std::string, NodeId> nodes;

  std::istringstream stream(text);
  std::string line;
  int line_no = 0;
  while (std::getline(stream, line)) {
    ++line_no;
    const auto tokens = tokenize(line);
    if (tokens.empty()) continue;
    const std::string& directive = tokens[0];

    if (directive == "as") {
      if (tokens.size() != 2) return line_error(line_no, "as <name>");
      if (ases.contains(tokens[1])) {
        return line_error(line_no, "duplicate AS " + tokens[1]);
      }
      ases[tokens[1]] = builder.add_as(tokens[1]);

    } else if (directive == "relate") {
      if (tokens.size() != 4) {
        return line_error(line_no, "relate <as> <rel> <as>");
      }
      const auto a = ases.find(tokens[1]);
      const auto b = ases.find(tokens[3]);
      if (a == ases.end() || b == ases.end()) {
        return line_error(line_no, "relate references undeclared AS");
      }
      AsRelation rel;
      if (tokens[2] == "customer") rel = AsRelation::kCustomer;
      else if (tokens[2] == "peer") rel = AsRelation::kPeer;
      else if (tokens[2] == "provider") rel = AsRelation::kProvider;
      else return line_error(line_no, "unknown relation " + tokens[2]);
      builder.relate(a->second, b->second, rel);

    } else if (directive == "node") {
      if (tokens.size() < 6) {
        return line_error(line_no, "node <name> <kind> <as> <lat> <lon> ...");
      }
      const std::string& name = tokens[1];
      if (nodes.contains(name)) {
        return line_error(line_no, "duplicate node " + name);
      }
      const bool is_host = tokens[2] == "host";
      if (!is_host && tokens[2] != "router") {
        return line_error(line_no, "node kind must be host|router");
      }
      const auto as = ases.find(tokens[3]);
      if (as == ases.end()) {
        return line_error(line_no, "node references undeclared AS");
      }
      geo::Coord coord;
      if (!parse_double(tokens[4], &coord.lat_deg) ||
          !parse_double(tokens[5], &coord.lon_deg)) {
        return line_error(line_no, "bad coordinates");
      }
      std::string city, tag;
      double middlebox = 0.0;
      for (std::size_t i = 6; i < tokens.size(); ++i) {
        const auto [key, value] = split_kv(tokens[i]);
        if (key == "city") city = value;
        else if (key == "tag") tag = value;
        else if (key == "middlebox") {
          if (!parse_double(value, &middlebox) || middlebox < 0) {
            return line_error(line_no, "bad middlebox rate");
          }
        } else {
          return line_error(line_no, "unknown node option " + key);
        }
      }
      const NodeId id =
          is_host ? builder.add_host(as->second, name, coord, city, tag)
                  : builder.add_router(as->second, name, coord, city);
      if (middlebox > 0) builder.middlebox(id, middlebox);
      nodes[name] = id;

    } else if (directive == "link") {
      if (tokens.size() < 5) {
        return line_error(line_no,
                          "link <src> <dst> cap=<mbps> delay_ms=<ms> ...");
      }
      const auto src = nodes.find(tokens[1]);
      const auto dst = nodes.find(tokens[2]);
      if (src == nodes.end() || dst == nodes.end()) {
        return line_error(line_no, "link references undeclared node");
      }
      double cap = 0, delay_ms = -1;
      LinkOpts opts;
      bool duplex = false;
      for (std::size_t i = 3; i < tokens.size(); ++i) {
        const auto [key, value] = split_kv(tokens[i]);
        if (key == "cap") {
          if (!parse_double(value, &cap)) {
            return line_error(line_no, "bad cap");
          }
        } else if (key == "delay_ms") {
          if (!parse_double(value, &delay_ms)) {
            return line_error(line_no, "bad delay_ms");
          }
        } else if (key == "loss") {
          if (!parse_double(value, &opts.loss_rate)) {
            return line_error(line_no, "bad loss");
          }
        } else if (key == "policer") {
          if (!parse_double(value, &opts.policer_per_flow_mbps)) {
            return line_error(line_no, "bad policer");
          }
        } else if (key == "duplex" && value.empty()) {
          duplex = true;
        } else {
          return line_error(line_no, "unknown link option " + key);
        }
      }
      if (cap <= 0 || delay_ms < 0) {
        return line_error(line_no, "link needs cap>0 and delay_ms>=0");
      }
      if (duplex) {
        builder.add_duplex(src->second, dst->second, cap,
                           util::ms(delay_ms), opts);
      } else {
        builder.add_link(src->second, dst->second, cap, util::ms(delay_ms),
                         opts);
      }

    } else {
      return line_error(line_no, "unknown directive " + directive);
    }
  }

  auto built = std::move(builder).build();
  if (!built.ok()) {
    return util::Error::make("validation: " + built.error().message);
  }
  return std::move(built).value();
}

std::string serialize_topology(const Topology& topo) {
  std::ostringstream out;
  out << "# droute topology, " << topo.as_count() << " ASes, "
      << topo.node_count() << " nodes, " << topo.link_count() << " links\n";
  for (std::size_t i = 0; i < topo.as_count(); ++i) {
    out << "as " << topo.as_info(static_cast<AsId>(i)).name << "\n";
  }
  // Each adjacency was declared once but recorded with its converse; emit
  // only the customer/peer canonical direction to avoid duplicates.
  for (const auto& adj : topo.as_adjacencies()) {
    if (adj.rel == AsRelation::kCustomer ||
        (adj.rel == AsRelation::kPeer && adj.first < adj.second)) {
      out << "relate " << topo.as_info(adj.first).name << " "
          << (adj.rel == AsRelation::kCustomer ? "customer" : "peer") << " "
          << topo.as_info(adj.second).name << "\n";
    }
  }
  for (std::size_t i = 0; i < topo.node_count(); ++i) {
    const Node& node = topo.node(static_cast<NodeId>(i));
    char coord[64];
    std::snprintf(coord, sizeof(coord), "%.6f %.6f", node.coord.lat_deg,
                  node.coord.lon_deg);
    out << "node " << node.name << " "
        << (node.kind == NodeKind::kHost ? "host" : "router") << " "
        << topo.as_info(node.as_id).name << " " << coord;
    const auto location = topo.registry().lookup(node.name);
    if (location && location->city != "unknown") {
      out << " city=\"" << location->city << "\"";
    }
    if (!node.tag.empty()) out << " tag=" << node.tag;
    if (node.middlebox_per_flow_mbps > 0) {
      out << " middlebox=" << node.middlebox_per_flow_mbps;
    }
    out << "\n";
  }
  for (std::size_t i = 0; i < topo.link_count(); ++i) {
    const Link& link = topo.link(static_cast<LinkId>(i));
    out << "link " << topo.node(link.src).name << " "
        << topo.node(link.dst).name << " cap=" << link.capacity_mbps
        << " delay_ms=" << link.prop_delay_s * 1e3;
    if (link.loss_rate > 0) out << " loss=" << link.loss_rate;
    if (link.policer_per_flow_mbps > 0) {
      out << " policer=" << link.policer_per_flow_mbps;
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace droute::net
