// Steady-state TCP throughput model for per-flow rate caps.
//
// A fluid flow in the fabric is capped by the slowest of:
//   * receive-window limit      rwnd / RTT,
//   * loss limit (Mathis et al. '97)  (MSS / RTT) * C / sqrt(p),
//   * any per-flow policer or middlebox ceiling on the route.
// Link capacity contention is handled separately by the max-min allocator.
//
// Slow start is approximated by a startup delay: the time the congestion
// window needs to reach the flow's cap, during which we conservatively count
// zero goodput. For multi-chunk API uploads over a persistent connection the
// engines charge this only on the first chunk.
#pragma once

#include <cstdint>

namespace droute::net {

struct TcpParams {
  double mss_bytes = 1460.0;       // Ethernet-typical segment size
  double rwnd_bytes = 4.0 * 1024 * 1024;  // 4 MiB autotuned window
  double mathis_c = 1.22;          // sqrt(3/2), the Mathis constant
  double init_cwnd_segments = 10;  // RFC 6928 initial window
};

/// Window-limited rate in Mbps (rtt in seconds).
double window_limit_mbps(double rtt_s, const TcpParams& params);

/// Mathis loss-limited rate in Mbps; returns +inf when loss == 0.
double mathis_limit_mbps(double rtt_s, double loss, const TcpParams& params);

/// Effective per-flow cap combining window, loss, policer and middlebox
/// ceilings (the last two pass 0 to mean "none").
double flow_cap_mbps(double rtt_s, double loss, double policer_mbps,
                     double middlebox_mbps, const TcpParams& params);

/// Slow-start time to ramp the congestion window from the initial window to
/// the window sustaining `target_mbps` at `rtt_s` (doubling each RTT).
double slow_start_delay_s(double rtt_s, double target_mbps,
                          const TcpParams& params);

}  // namespace droute::net
