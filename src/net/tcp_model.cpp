#include "net/tcp_model.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/units.h"

namespace droute::net {

double window_limit_mbps(double rtt_s, const TcpParams& params) {
  if (rtt_s <= 0.0) return std::numeric_limits<double>::infinity();
  return util::bytes_per_sec_to_mbps(params.rwnd_bytes / rtt_s);
}

double mathis_limit_mbps(double rtt_s, double loss, const TcpParams& params) {
  if (loss <= 0.0) return std::numeric_limits<double>::infinity();
  if (rtt_s <= 0.0) return std::numeric_limits<double>::infinity();
  const double bps =
      params.mss_bytes / rtt_s * params.mathis_c / std::sqrt(loss);
  return util::bytes_per_sec_to_mbps(bps);
}

double flow_cap_mbps(double rtt_s, double loss, double policer_mbps,
                     double middlebox_mbps, const TcpParams& params) {
  double cap = std::min(window_limit_mbps(rtt_s, params),
                        mathis_limit_mbps(rtt_s, loss, params));
  if (policer_mbps > 0.0) cap = std::min(cap, policer_mbps);
  if (middlebox_mbps > 0.0) cap = std::min(cap, middlebox_mbps);
  return cap;
}

double slow_start_delay_s(double rtt_s, double target_mbps,
                          const TcpParams& params) {
  if (rtt_s <= 0.0 || target_mbps <= 0.0 ||
      !std::isfinite(target_mbps)) {
    return 0.0;
  }
  const double target_window_bytes =
      util::mbps_to_bytes_per_sec(target_mbps) * rtt_s;
  const double init_bytes = params.init_cwnd_segments * params.mss_bytes;
  if (target_window_bytes <= init_bytes) return 0.0;
  const double doublings = std::log2(target_window_bytes / init_bytes);
  return doublings * rtt_s;
}

}  // namespace droute::net
