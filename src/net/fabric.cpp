#include "net/fabric.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>

#include "check/contract.h"
#include "obs/recorder.h"
#include "util/logging.h"
#include "util/thread_pool.h"
#include "util/units.h"

namespace droute::net {

namespace {
// Completion tolerance: half a byte absorbs fluid-model rounding.
constexpr double kByteEps = 0.5;
constexpr double kRateEps = 1e-6;  // bytes/sec

constexpr std::uint32_t kNoSlot = std::numeric_limits<std::uint32_t>::max();

// A flow counts as finished once its residue would drain within a
// nanosecond: scheduling an event that close to `now` can round to exactly
// `now` in double precision, which would otherwise livelock the event loop
// (time stops advancing while the residue never shrinks).
bool drained(double remaining_bytes, double rate_bps) {
  return remaining_bytes <= kByteEps + rate_bps * 1e-9;
}
}  // namespace

Fabric::Fabric(sim::Simulator* simulator, Topology* topo, RouteTable* routes)
    : simulator_(simulator), topo_(topo), routes_(routes) {
  DROUTE_CHECK(simulator_ && topo_ && routes_, "Fabric: null dependency");
  obs_flows_started_ = obs::counter("net.flows_started_total");
  obs_flows_completed_ = obs::counter("net.flows_completed_total");
  obs_flows_failed_ = obs::counter("net.flows_failed_total");
  obs_flows_policer_capped_ = obs::counter("net.flows_policer_capped_total");
  obs_realloc_rounds_ = obs::counter("net.realloc_rounds_total");
  obs_realloc_components_ = obs::counter("net.realloc_components_total");
  obs_realloc_skipped_ = obs::counter("net.realloc_skipped_total");
  obs_flow_duration_ =
      obs::histogram("net.flow_duration_s", obs::duration_bounds_s());
  obs_link_utilization_ =
      obs::histogram("net.link_utilization_ratio", obs::ratio_bounds());
  obs_shard_batches_ = obs::counter("net.shard_batches_total");
  obs_shard_fills_ = obs::counter("net.shard_fills_total");
  obs_shard_batch_components_ = obs::gauge("net.shard_batch_components");
  obs_shard_imbalance_ =
      obs::histogram("net.shard_imbalance_ratio", obs::log_ratio_bounds());
  if (const char* env = std::getenv("DROUTE_SHARD_WORKERS")) {
    const int workers = std::atoi(env);
    if (workers >= 1) {
      alloc_mode_ = AllocMode::kSharded;
      shard_workers_ = workers;
    }
  }
  // Link ids are dense topology indices; size the per-link table up front
  // so attach never regrows it mid-simulation (late-added links still grow
  // it lazily).
  links_.resize(topo_->link_count());
}

Fabric::~Fabric() = default;

void Fabric::set_shard_workers(int workers) {
  DROUTE_CHECK(workers >= 1, "shard workers must be >= 1");
  if (workers != shard_workers_) shard_pool_.reset();
  shard_workers_ = workers;
}

util::Result<double> Fabric::rtt_s(NodeId a, NodeId b) const {
  auto forward = routes_->route(a, b);
  if (!forward.ok()) return util::Error{forward.error()};
  auto back = routes_->route(b, a);
  if (!back.ok()) return util::Error{back.error()};
  return routes_->one_way_delay_s(forward.value()) +
         routes_->one_way_delay_s(back.value()) + base_rtt_s_;
}

std::uint32_t Fabric::slot_of(FlowId id) const {
  const auto it = slot_index_.find(id);
  return it == slot_index_.end() ? kNoSlot : it->second;
}

util::Result<FlowId> Fabric::start_flow(NodeId src, NodeId dst,
                                        std::uint64_t bytes,
                                        CompletionFn on_complete,
                                        FlowOptions options) {
  if (bytes == 0) return util::Error::make("start_flow: zero-byte flow");
  auto route = routes_->route(src, dst);
  if (!route.ok()) return util::Error{route.error()};
  auto rtt = rtt_s(src, dst);
  if (!rtt.ok()) return util::Error{rtt.error()};

  const double loss = routes_->path_loss(route.value());
  const double policer = routes_->min_policer_mbps(route.value());
  const double middlebox = routes_->min_middlebox_mbps(route.value());
  double cap_mbps = flow_cap_mbps(rtt.value(), loss, policer, middlebox,
                                  options.tcp);
  if (options.app_cap_mbps > 0.0) {
    cap_mbps = std::min(cap_mbps, options.app_cap_mbps);
  }
  // A flow can never exceed its narrowest link even alone.
  cap_mbps = std::min(cap_mbps,
                      routes_->bottleneck_capacity_mbps(route.value()));
  DROUTE_CHECK(cap_mbps > 0.0, "flow cap must be positive");
  obs::add(obs_flows_started_);
  if (policer > 0.0 && cap_mbps >= policer - 1e-9) {
    // The route's policer is the binding ceiling — the "dropped to the
    // policed rate" signal operators look for first.
    obs::add(obs_flows_policer_capped_);
  }

  const FlowId id = next_flow_id_++;

  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& cell = slots_[slot];
  DROUTE_CHECK(cell.id == 0, "slot reuse of a live flow");
  cell.id = id;
  Flow& flow = cell.flow;
  flow.stats = FlowStats{};
  flow.stats.id = id;
  flow.stats.src = src;
  flow.stats.dst = dst;
  flow.stats.bytes = bytes;
  flow.stats.start_time = simulator_->now();
  flow.stats.rtt_s = rtt.value();
  flow.stats.cap_mbps = cap_mbps;
  flow.stats.route = std::move(route).value();
  flow.on_complete = std::move(on_complete);
  flow.remaining_bytes = static_cast<double>(bytes);
  flow.last_advance_s = simulator_->now();
  flow.rate_bps = 0.0;
  flow.cap_bps = util::mbps_to_bytes_per_sec(cap_mbps);
  flow.activated = false;
  flow.activation_event = sim::EventId{};
  flow.link_pos.clear();

  slot_index_.emplace(id, slot);
  ++live_flows_;
  submitted_bytes_ += bytes;

  const double ss_delay =
      options.charge_slow_start
          ? slow_start_delay_s(rtt.value(), cap_mbps, options.tcp)
          : 0.0;
  if (ss_delay > 0.0) {
    flow.activation_event = simulator_->schedule_in(ss_delay, [this, id] {
      const std::uint32_t s = slot_of(id);
      if (s == kNoSlot) return;  // aborted during slow start
      slots_[s].flow.activated = true;
      attach_to_links(s);
      reallocate_and_reschedule({s});
    });
    // The pending flow consumes nothing until activation: no component is
    // dirtied, no completion can move.
  } else {
    flow.activated = true;
    attach_to_links(slot);
    reallocate_and_reschedule({slot});
  }
  return id;
}

void Fabric::abort_flow(FlowId id) {
  const std::uint32_t slot = slot_of(id);
  if (slot == kNoSlot) return;
  advance_flow(slots_[slot].flow, slots_[slot].flow.rate_bps);
  std::vector<std::uint32_t> seeds;
  if (slots_[slot].flow.activated) {
    seeds = flows_on_links(slots_[slot].flow.stats.route);
  }
  Flow flow = extract_flow(slot);
  if (flow.activation_event.valid()) simulator_->cancel(flow.activation_event);
  reallocate_and_reschedule(seeds);
  finish(std::move(flow), FlowOutcome::kAborted);
}

void Fabric::fail_link(LinkId link) {
  const auto status = topo_->set_link_enabled(link, false);
  DROUTE_CHECK(status.ok(), "fail_link: unknown link");
  routes_->invalidate();
  std::vector<std::pair<FlowId, std::uint32_t>> victims;
  for (std::uint32_t slot = 0; slot < slots_.size(); ++slot) {
    if (slots_[slot].id == 0) continue;
    const auto& links = slots_[slot].flow.stats.route.links;
    if (std::find(links.begin(), links.end(), link) != links.end()) {
      victims.emplace_back(slots_[slot].id, slot);
    }
  }
  std::sort(victims.begin(), victims.end());
  // Survivors sharing a link with any victim get more headroom; collect
  // them as dirty seeds before the victims leave the adjacency lists.
  std::vector<std::uint32_t> seeds;
  for (const auto& [vid, vslot] : victims) {
    if (!slots_[vslot].flow.activated) continue;
    for (const LinkId lid : slots_[vslot].flow.stats.route.links) {
      for (const LinkFlowRef& ref : links_[lid].flows) seeds.push_back(ref.slot);
    }
  }
  std::vector<Flow> failed;
  failed.reserve(victims.size());
  for (const auto& [vid, vslot] : victims) {
    advance_flow(slots_[vslot].flow, slots_[vslot].flow.rate_bps);
    Flow flow = extract_flow(vslot);
    if (flow.activation_event.valid()) {
      simulator_->cancel(flow.activation_event);
    }
    failed.push_back(std::move(flow));
  }
  reallocate_and_reschedule(seeds);
  for (auto& flow : failed) finish(std::move(flow), FlowOutcome::kLinkFailed);
}

void Fabric::restore_link(LinkId link) {
  const auto status = topo_->set_link_enabled(link, true);
  DROUTE_CHECK(status.ok(), "restore_link: unknown link");
  routes_->invalidate();
  // In-flight flows keep their routes, so no allocation input changed — the
  // restored link carries no flows (they all failed with it). Only new
  // flows see it, via the invalidated route tables.
  reallocate_and_reschedule({});
}

void Fabric::reallocate_now() {
  if (live_flows_ == 0) {
    // Nothing allocated and nothing scheduled (a pending completion implies
    // a live flow): the recompute would be a pure no-op. Policer/capacity
    // rewrite hooks hit this constantly between campaign runs.
    ++realloc_skipped_;
    obs::add(obs_realloc_skipped_);
    return;
  }
  // The caller mutated the topology out-of-band (capacity/policer rewrite);
  // the fabric cannot see which links changed, so every component is dirty.
  reallocate_and_reschedule({}, /*force_full=*/true);
}

double Fabric::current_rate_mbps(FlowId id) const {
  const std::uint32_t slot = slot_of(id);
  if (slot == kNoSlot) return 0.0;
  return util::bytes_per_sec_to_mbps(slots_[slot].flow.rate_bps);
}

double Fabric::moved_bytes() const {
  double moved = finished_moved_bytes_;
  for (const Slot& cell : slots_) {
    if (cell.id == 0) continue;
    moved += static_cast<double>(cell.flow.stats.bytes) -
             live_remaining(cell.flow);
  }
  return moved;
}

std::vector<Fabric::LinkLoad> Fabric::link_loads() const {
  // Accumulate in flow-id order (stable, matches the historical std::map
  // walk) so per-link sums are reproducible run to run.
  std::vector<std::pair<FlowId, std::uint32_t>> order;
  order.reserve(live_flows_);
  for (std::uint32_t slot = 0; slot < slots_.size(); ++slot) {
    if (slots_[slot].id != 0) order.emplace_back(slots_[slot].id, slot);
  }
  std::sort(order.begin(), order.end());
  std::map<LinkId, LinkLoad> loads;
  for (const auto& [id, slot] : order) {
    const Flow& flow = slots_[slot].flow;
    if (!flow.activated) continue;
    for (LinkId lid : flow.stats.route.links) {
      LinkLoad& load = loads[lid];
      load.link = lid;
      load.capacity_mbps = topo_->link(lid).capacity_mbps;
      load.allocated_mbps += util::bytes_per_sec_to_mbps(flow.rate_bps);
      ++load.flows;
    }
  }
  std::vector<LinkLoad> out;
  out.reserve(loads.size());
  for (const auto& [lid, load] : loads) out.push_back(load);
  return out;
}

void Fabric::advance_flow(Flow& flow, double rate_bps) const {
  const sim::Time now = simulator_->now();
  const double dt = now - flow.last_advance_s;
  DROUTE_CHECK(dt >= -1e-12, "fabric clock went backwards");
  if (dt > 0.0) {
    flow.remaining_bytes =
        std::max(0.0, flow.remaining_bytes - rate_bps * dt);
  }
  flow.last_advance_s = now;
}

double Fabric::live_remaining(const Flow& flow) const {
  const double dt = simulator_->now() - flow.last_advance_s;
  if (dt <= 0.0) return flow.remaining_bytes;
  return std::max(0.0, flow.remaining_bytes - flow.rate_bps * dt);
}

void Fabric::push_finish(std::uint32_t slot) {
  Slot& cell = slots_[slot];
  ++cell.gen;  // supersede whatever entry is queued for this slot
  const Flow& flow = cell.flow;
  DROUTE_CHECK(flow.last_advance_s == simulator_->now(),
               "finish keyed from a stale remaining");
  double finish_s = std::numeric_limits<double>::infinity();
  if (flow.rate_bps > kRateEps) {
    finish_s = simulator_->now() +
               std::max(0.0, flow.remaining_bytes - kByteEps) / flow.rate_bps;
  } else if (flow.activated && drained(flow.remaining_bytes, 0.0)) {
    finish_s = simulator_->now();  // already done, just needs the event
  }
  if (std::isfinite(finish_s)) {
    finish_heap_.push(FinishEntry{finish_s, slot, cell.gen});
  }
}

void Fabric::resync_completion_event() {
  while (!finish_heap_.empty()) {
    const FinishEntry& top = finish_heap_.top();
    if (slots_[top.slot].id != 0 && slots_[top.slot].gen == top.gen) break;
    finish_heap_.pop();
  }
  const sim::Time want =
      finish_heap_.empty() ? sim::kTimeInfinity : finish_heap_.top().finish_s;
  if (want == scheduled_finish_) return;
  if (completion_event_.valid()) {
    simulator_->cancel(completion_event_);
    completion_event_ = sim::EventId{};
  }
  scheduled_finish_ = want;
  if (std::isfinite(want)) {
    completion_event_ =
        simulator_->schedule_at(want, [this] { on_completion_event(); });
  }
}

void Fabric::attach_to_links(std::uint32_t slot) {
  Flow& flow = slots_[slot].flow;
  const auto& route_links = flow.stats.route.links;
  flow.link_pos.resize(route_links.size());
  for (std::uint32_t i = 0; i < route_links.size(); ++i) {
    const LinkId lid = route_links[i];
    if (static_cast<std::size_t>(lid) >= links_.size()) {
      links_.resize(static_cast<std::size_t>(lid) + 1);
    }
    flow.link_pos[i] = static_cast<std::uint32_t>(links_[lid].flows.size());
    links_[lid].flows.push_back(LinkFlowRef{slot, i});
  }
}

void Fabric::detach_from_links(std::uint32_t slot) {
  Flow& flow = slots_[slot].flow;
  const auto& route_links = flow.stats.route.links;
  for (std::uint32_t i = 0; i < route_links.size(); ++i) {
    auto& refs = links_[route_links[i]].flows;
    const std::uint32_t pos = flow.link_pos[i];
    DROUTE_CHECK(pos < refs.size() && refs[pos].slot == slot &&
                     refs[pos].route_idx == i,
                 "link adjacency out of sync");
    refs[pos] = refs.back();
    refs.pop_back();
    if (pos < refs.size()) {
      const LinkFlowRef moved = refs[pos];
      slots_[moved.slot].flow.link_pos[moved.route_idx] = pos;
    }
  }
  flow.link_pos.clear();
}

Fabric::Flow Fabric::extract_flow(std::uint32_t slot) {
  Slot& cell = slots_[slot];
  DROUTE_CHECK(cell.id != 0, "extract of a free slot");
  ++cell.gen;  // orphan any queued finish entry before the slot is reused
  if (cell.flow.activated) detach_from_links(slot);
  slot_index_.erase(cell.id);
  cell.id = 0;
  --live_flows_;
  free_slots_.push_back(slot);
  return std::move(cell.flow);
}

std::vector<std::uint32_t> Fabric::flows_on_links(const Route& route) const {
  std::vector<std::uint32_t> slots;
  for (const LinkId lid : route.links) {
    if (static_cast<std::size_t>(lid) >= links_.size()) continue;
    for (const LinkFlowRef& ref : links_[lid].flows) slots.push_back(ref.slot);
  }
  return slots;
}

void Fabric::collect_component(std::uint32_t seed_slot) {
  bfs_stack_.clear();
  slots_[seed_slot].mark = epoch_;
  bfs_stack_.push_back(seed_slot);
  while (!bfs_stack_.empty()) {
    const std::uint32_t slot = bfs_stack_.back();
    bfs_stack_.pop_back();
    batch_flows_.push_back(slot);
    batch_prev_rates_.push_back(slots_[slot].flow.rate_bps);
    for (const LinkId lid : slots_[slot].flow.stats.route.links) {
      LinkState& link = links_[lid];
      if (link.mark == epoch_) continue;
      link.mark = epoch_;
      batch_links_.push_back(lid);
      for (const LinkFlowRef& ref : link.flows) {
        Slot& other = slots_[ref.slot];
        if (other.mark == epoch_) continue;
        other.mark = epoch_;
        bfs_stack_.push_back(ref.slot);
      }
    }
  }
}

std::uint64_t Fabric::fill_component(
    std::size_t comp, std::vector<std::uint32_t>& unfrozen,
    std::vector<std::uint32_t>& still_unfrozen) {
  // --- Progressive filling (water-filling) with per-flow caps. ---
  // Invariants on exit (checked by tests): no link over capacity, no flow
  // over its cap, and every unfrozen flow is blocked by a saturated link.
  //
  // The arithmetic below must stay a pure function of this component's
  // flows and links: the incremental/full-recompute equivalence (DESIGN.md
  // §12) rests on unchanged components reproducing their retained rates
  // bit-for-bit, and the sharded mode (DESIGN.md §16) additionally runs
  // this on pool workers — it may touch only this component's slots_/links_
  // entries (disjoint across the batch by construction), read the topology,
  // and must never reach the simulator, the finish heap, obs, or any clock.
  // Min-reductions are exact and all updates are per-entry, so iteration
  // order cannot perturb the result.
  const std::size_t fbegin = batch_flow_begin_[comp];
  const std::size_t fend = batch_flow_begin_[comp + 1];
  const std::size_t lbegin = batch_link_begin_[comp];
  const std::size_t lend = batch_link_begin_[comp + 1];
  for (std::size_t i = fbegin; i < fend; ++i) {
    slots_[batch_flows_[i]].flow.rate_bps = 0.0;
  }
  for (std::size_t l = lbegin; l < lend; ++l) {
    const LinkId lid = batch_links_[l];
    links_[lid].remaining_bps =
        util::mbps_to_bytes_per_sec(topo_->link(lid).capacity_mbps);
    links_[lid].active = static_cast<std::int32_t>(links_[lid].flows.size());
  }

  unfrozen.assign(batch_flows_.begin() + static_cast<std::ptrdiff_t>(fbegin),
                  batch_flows_.begin() + static_cast<std::ptrdiff_t>(fend));
  std::uint64_t rounds = 0;
  while (!unfrozen.empty()) {
    ++rounds;
    double delta = std::numeric_limits<double>::infinity();
    for (const std::uint32_t slot : unfrozen) {
      const Flow& flow = slots_[slot].flow;
      delta = std::min(delta, flow.cap_bps - flow.rate_bps);
    }
    for (std::size_t l = lbegin; l < lend; ++l) {
      const LinkState& link = links_[batch_links_[l]];
      if (link.active > 0) {
        delta = std::min(delta, link.remaining_bps / link.active);
      }
    }
    delta = std::max(delta, 0.0);

    for (const std::uint32_t slot : unfrozen) {
      slots_[slot].flow.rate_bps += delta;
    }
    for (std::size_t l = lbegin; l < lend; ++l) {
      LinkState& link = links_[batch_links_[l]];
      link.remaining_bps -= delta * link.active;
    }

    // Freeze flows at their cap or on a saturated link.
    still_unfrozen.clear();
    for (const std::uint32_t slot : unfrozen) {
      const Flow& flow = slots_[slot].flow;
      bool frozen = flow.rate_bps >= flow.cap_bps - kRateEps;
      if (!frozen) {
        for (const LinkId lid : flow.stats.route.links) {
          if (links_[lid].remaining_bps <= kRateEps) {
            frozen = true;
            break;
          }
        }
      }
      if (frozen) {
        for (const LinkId lid : flow.stats.route.links) {
          --links_[lid].active;
        }
      } else {
        still_unfrozen.push_back(slot);
      }
    }
    DROUTE_CHECK(still_unfrozen.size() < unfrozen.size() || delta > 0.0,
                 "allocation failed to make progress");
    std::swap(unfrozen, still_unfrozen);
  }
  return rounds;
}

void Fabric::reallocate_and_reschedule(const std::vector<std::uint32_t>& seeds,
                                       bool force_full) {
  ++epoch_;
  if (epoch_ == 0) {
    // uint32 wrap: stale marks could alias the new epoch; reset them all.
    for (Slot& cell : slots_) cell.mark = 0;
    for (LinkState& link : links_) link.mark = 0;
    epoch_ = 1;
  }

  // Phase A — collect (serial, deterministic order: dense slot ids in full
  // mode, caller-provided seed order otherwise). Component membership and
  // pre-fill rates land in the batch arrays; nothing is mutated yet.
  batch_flows_.clear();
  batch_links_.clear();
  batch_prev_rates_.clear();
  batch_flow_begin_.assign(1, 0);
  batch_link_begin_.assign(1, 0);
  const auto consider = [this](std::uint32_t slot) {
    const Slot& cell = slots_[slot];
    if (cell.id == 0 || !cell.flow.activated || cell.mark == epoch_) return;
    collect_component(slot);
    batch_flow_begin_.push_back(batch_flows_.size());
    batch_link_begin_.push_back(batch_links_.size());
  };
  const bool full = force_full || alloc_mode_ == AllocMode::kFullRecompute;
  if (full) {
    for (std::uint32_t slot = 0; slot < slots_.size(); ++slot) consider(slot);
  } else {
    for (const std::uint32_t slot : seeds) consider(slot);
  }
  const std::size_t components = batch_flow_begin_.size() - 1;

  // Phase B — water-fill every collected component. Each fill is a pure
  // function of its component (see fill_component), so sharded mode fans
  // the batch out to the pool; any order of execution produces bit-identical
  // rates. The simulator is guarded against worker scheduling for the whole
  // parallel window.
  batch_rounds_.assign(components, 0);
  if (alloc_mode_ == AllocMode::kSharded && shard_workers_ > 1 &&
      components > 1) {
    if (!shard_pool_ ||
        shard_pool_->thread_count() !=
            static_cast<std::size_t>(shard_workers_)) {
      shard_pool_ = std::make_unique<util::ThreadPool>(
          static_cast<std::size_t>(shard_workers_));
    }
    simulator_->begin_parallel_section();
    try {
      shard_pool_->parallel_for(components, [this](std::size_t comp) {
        thread_local std::vector<std::uint32_t> unfrozen;
        thread_local std::vector<std::uint32_t> still_unfrozen;
        batch_rounds_[comp] = fill_component(comp, unfrozen, still_unfrozen);
      });
    } catch (...) {
      simulator_->end_parallel_section();
      throw;
    }
    simulator_->end_parallel_section();
  } else {
    for (std::size_t comp = 0; comp < components; ++comp) {
      batch_rounds_[comp] = fill_component(comp, unfrozen_, still_unfrozen_);
    }
  }

  // Phase C — merge (serial, strictly in collection order): settle byte
  // progress and re-key the finish heap for exactly the flows whose rate
  // changed bitwise, then observe per-link utilization. An unchanged
  // component reproduces its retained rates exactly, so every mode takes
  // the same advance/re-key actions in the same order — the invariant the
  // equivalence suite pins down, and the reason no wall-clock or scheduling
  // order can leak into event timestamps or metrics.
  std::uint64_t rounds = 0;
  std::size_t largest_component = 0;
  for (std::size_t comp = 0; comp < components; ++comp) {
    rounds += batch_rounds_[comp];
    const std::size_t fbegin = batch_flow_begin_[comp];
    const std::size_t fend = batch_flow_begin_[comp + 1];
    largest_component = std::max(largest_component, fend - fbegin);
    for (std::size_t i = fbegin; i < fend; ++i) {
      const std::uint32_t slot = batch_flows_[i];
      Flow& flow = slots_[slot].flow;
      if (flow.rate_bps == batch_prev_rates_[i]) continue;
      advance_flow(flow, batch_prev_rates_[i]);
      push_finish(slot);
    }
    if (obs_link_utilization_ != nullptr) {
      for (std::size_t l = batch_link_begin_[comp];
           l < batch_link_begin_[comp + 1]; ++l) {
        const LinkId lid = batch_links_[l];
        const double capacity_bps =
            util::mbps_to_bytes_per_sec(topo_->link(lid).capacity_mbps);
        if (capacity_bps <= 0.0) continue;
        obs_link_utilization_->observe(
            std::max(0.0, 1.0 - links_[lid].remaining_bps / capacity_bps));
      }
    }
  }
  obs::add(obs_realloc_rounds_, rounds);
  obs::add(obs_realloc_components_, components);
  // Shard-boundary diagnostics, derived from the batch structure alone so
  // the values are identical in every mode and at every worker count.
  obs::add(obs_shard_batches_);
  obs::add(obs_shard_fills_, components);
  obs::set(obs_shard_batch_components_, static_cast<double>(components));
  if (!batch_flows_.empty()) {
    obs::observe(obs_shard_imbalance_,
                 static_cast<double>(largest_component) /
                     static_cast<double>(batch_flows_.size()));
  }

  resync_completion_event();
}

void Fabric::on_completion_event() {
  completion_event_ = sim::EventId{};
  scheduled_finish_ = sim::kTimeInfinity;
  const sim::Time now = simulator_->now();
  std::vector<std::pair<FlowId, std::uint32_t>> done_order;
  while (!finish_heap_.empty()) {
    const FinishEntry top = finish_heap_.top();
    if (slots_[top.slot].id == 0 || slots_[top.slot].gen != top.gen) {
      finish_heap_.pop();
      continue;
    }
    if (top.finish_s > now) break;
    finish_heap_.pop();
    Flow& flow = slots_[top.slot].flow;
    advance_flow(flow, flow.rate_bps);
    if (drained(flow.remaining_bytes, flow.rate_bps)) {
      done_order.emplace_back(slots_[top.slot].id, top.slot);
    } else {
      // Residue not quite drained (fp rounding): re-key strictly later. The
      // nanosecond term in drained() guarantees the new finish is > now.
      push_finish(top.slot);
    }
  }
  std::sort(done_order.begin(), done_order.end());
  // Survivors that shared a link with a completing flow must be refilled;
  // gather them before the completions leave the adjacency lists.
  std::vector<std::uint32_t> seeds;
  for (const auto& [id, slot] : done_order) {
    for (const LinkId lid : slots_[slot].flow.stats.route.links) {
      for (const LinkFlowRef& ref : links_[lid].flows) seeds.push_back(ref.slot);
    }
  }
  std::vector<Flow> done;
  done.reserve(done_order.size());
  for (const auto& [id, slot] : done_order) {
    done.push_back(extract_flow(slot));
  }
  reallocate_and_reschedule(seeds);
  for (auto& flow : done) {
    delivered_bytes_ += flow.stats.bytes;
    finish(std::move(flow), FlowOutcome::kCompleted);
  }
}

void Fabric::finish(Flow flow, FlowOutcome outcome) {
  flow.stats.end_time = simulator_->now();
  flow.stats.outcome = outcome;
  if (outcome == FlowOutcome::kCompleted) {
    obs::add(obs_flows_completed_);
    obs::observe(obs_flow_duration_, flow.stats.duration_s());
  } else {
    obs::add(obs_flows_failed_);
  }
  finished_moved_bytes_ +=
      static_cast<double>(flow.stats.bytes) - flow.remaining_bytes;
  if (outcome == FlowOutcome::kCompleted) {
    // A completed flow moved all of its payload by definition; reconcile the
    // sub-byte fluid residue into the moved-bytes ledger.
    finished_moved_bytes_ += flow.remaining_bytes;
  }
  DROUTE_LOG(kDebug) << "flow " << flow.stats.id << " " << flow.stats.bytes
                     << "B " << topo_->node(flow.stats.src).name << "->"
                     << topo_->node(flow.stats.dst).name << " outcome="
                     << static_cast<int>(outcome) << " t="
                     << flow.stats.duration_s();
  if (flow.on_complete) flow.on_complete(flow.stats);
}

}  // namespace droute::net
