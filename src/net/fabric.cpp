#include "net/fabric.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "check/contract.h"
#include "obs/recorder.h"
#include "util/logging.h"
#include "util/units.h"

namespace droute::net {

namespace {
// Completion tolerance: half a byte absorbs fluid-model rounding.
constexpr double kByteEps = 0.5;
constexpr double kRateEps = 1e-6;  // bytes/sec

// A flow counts as finished once its residue would drain within a
// nanosecond: scheduling an event that close to `now` can round to exactly
// `now` in double precision, which would otherwise livelock the event loop
// (time stops advancing while the residue never shrinks).
bool drained(double remaining_bytes, double rate_bps) {
  return remaining_bytes <= kByteEps + rate_bps * 1e-9;
}
}  // namespace

Fabric::Fabric(sim::Simulator* simulator, Topology* topo, RouteTable* routes)
    : simulator_(simulator), topo_(topo), routes_(routes) {
  DROUTE_CHECK(simulator_ && topo_ && routes_, "Fabric: null dependency");
  obs_flows_started_ = obs::counter("net.flows_started_total");
  obs_flows_completed_ = obs::counter("net.flows_completed_total");
  obs_flows_failed_ = obs::counter("net.flows_failed_total");
  obs_flows_policer_capped_ = obs::counter("net.flows_policer_capped_total");
  obs_realloc_rounds_ = obs::counter("net.realloc_rounds_total");
  obs_flow_duration_ =
      obs::histogram("net.flow_duration_s", obs::duration_bounds_s());
  obs_link_utilization_ =
      obs::histogram("net.link_utilization_ratio", obs::ratio_bounds());
}

util::Result<double> Fabric::rtt_s(NodeId a, NodeId b) const {
  auto forward = routes_->route(a, b);
  if (!forward.ok()) return util::Error{forward.error()};
  auto back = routes_->route(b, a);
  if (!back.ok()) return util::Error{back.error()};
  return routes_->one_way_delay_s(forward.value()) +
         routes_->one_way_delay_s(back.value()) + base_rtt_s_;
}

util::Result<FlowId> Fabric::start_flow(NodeId src, NodeId dst,
                                        std::uint64_t bytes,
                                        CompletionFn on_complete,
                                        FlowOptions options) {
  if (bytes == 0) return util::Error::make("start_flow: zero-byte flow");
  auto route = routes_->route(src, dst);
  if (!route.ok()) return util::Error{route.error()};
  auto rtt = rtt_s(src, dst);
  if (!rtt.ok()) return util::Error{rtt.error()};

  advance_to_now();

  const double loss = routes_->path_loss(route.value());
  const double policer = routes_->min_policer_mbps(route.value());
  const double middlebox = routes_->min_middlebox_mbps(route.value());
  double cap_mbps = flow_cap_mbps(rtt.value(), loss, policer, middlebox,
                                  options.tcp);
  if (options.app_cap_mbps > 0.0) {
    cap_mbps = std::min(cap_mbps, options.app_cap_mbps);
  }
  // A flow can never exceed its narrowest link even alone.
  cap_mbps = std::min(cap_mbps,
                      routes_->bottleneck_capacity_mbps(route.value()));
  DROUTE_CHECK(cap_mbps > 0.0, "flow cap must be positive");
  obs::add(obs_flows_started_);
  if (policer > 0.0 && cap_mbps >= policer - 1e-9) {
    // The route's policer is the binding ceiling — the "dropped to the
    // policed rate" signal operators look for first.
    obs::add(obs_flows_policer_capped_);
  }

  const FlowId id = next_flow_id_++;
  Flow flow;
  flow.stats.id = id;
  flow.stats.src = src;
  flow.stats.dst = dst;
  flow.stats.bytes = bytes;
  flow.stats.start_time = simulator_->now();
  flow.stats.rtt_s = rtt.value();
  flow.stats.cap_mbps = cap_mbps;
  flow.stats.route = std::move(route).value();
  flow.on_complete = std::move(on_complete);
  flow.remaining_bytes = static_cast<double>(bytes);
  flow.cap_bps = util::mbps_to_bytes_per_sec(cap_mbps);

  const double ss_delay =
      options.charge_slow_start
          ? slow_start_delay_s(rtt.value(), cap_mbps, options.tcp)
          : 0.0;
  auto [it, inserted] = flows_.emplace(id, std::move(flow));
  DROUTE_CHECK(inserted, "duplicate flow id");
  submitted_bytes_ += bytes;
  if (ss_delay > 0.0) {
    it->second.activation_event = simulator_->schedule_in(ss_delay, [this, id] {
      advance_to_now();
      auto fit = flows_.find(id);
      if (fit == flows_.end()) return;  // aborted during slow start
      fit->second.activated = true;
      reallocate_and_reschedule();
    });
  } else {
    it->second.activated = true;
  }
  reallocate_and_reschedule();
  return id;
}

void Fabric::abort_flow(FlowId id) {
  auto it = flows_.find(id);
  if (it == flows_.end()) return;
  advance_to_now();
  Flow flow = std::move(it->second);
  flows_.erase(it);
  if (flow.activation_event.valid()) simulator_->cancel(flow.activation_event);
  reallocate_and_reschedule();
  finish(std::move(flow), FlowOutcome::kAborted);
}

void Fabric::fail_link(LinkId link) {
  advance_to_now();
  const auto status = topo_->set_link_enabled(link, false);
  DROUTE_CHECK(status.ok(), "fail_link: unknown link");
  routes_->invalidate();
  std::vector<FlowId> victims;
  for (const auto& [id, flow] : flows_) {
    const auto& links = flow.stats.route.links;
    if (std::find(links.begin(), links.end(), link) != links.end()) {
      victims.push_back(id);
    }
  }
  std::vector<Flow> failed;
  failed.reserve(victims.size());
  for (FlowId id : victims) {
    auto it = flows_.find(id);
    Flow flow = std::move(it->second);
    flows_.erase(it);
    if (flow.activation_event.valid()) {
      simulator_->cancel(flow.activation_event);
    }
    failed.push_back(std::move(flow));
  }
  reallocate_and_reschedule();
  for (auto& flow : failed) finish(std::move(flow), FlowOutcome::kLinkFailed);
}

void Fabric::restore_link(LinkId link) {
  advance_to_now();
  const auto status = topo_->set_link_enabled(link, true);
  DROUTE_CHECK(status.ok(), "restore_link: unknown link");
  routes_->invalidate();
  reallocate_and_reschedule();
}

void Fabric::reallocate_now() {
  advance_to_now();
  reallocate_and_reschedule();
}

double Fabric::current_rate_mbps(FlowId id) const {
  auto it = flows_.find(id);
  if (it == flows_.end()) return 0.0;
  return util::bytes_per_sec_to_mbps(it->second.rate_bps);
}

double Fabric::moved_bytes() const {
  double moved = finished_moved_bytes_;
  for (const auto& [id, flow] : flows_) {
    moved += static_cast<double>(flow.stats.bytes) - flow.remaining_bytes;
  }
  return moved;
}

std::vector<Fabric::LinkLoad> Fabric::link_loads() const {
  std::map<LinkId, LinkLoad> loads;
  for (const auto& [id, flow] : flows_) {
    if (!flow.activated) continue;
    for (LinkId lid : flow.stats.route.links) {
      LinkLoad& load = loads[lid];
      load.link = lid;
      load.capacity_mbps = topo_->link(lid).capacity_mbps;
      load.allocated_mbps += util::bytes_per_sec_to_mbps(flow.rate_bps);
      ++load.flows;
    }
  }
  std::vector<LinkLoad> out;
  out.reserve(loads.size());
  for (const auto& [lid, load] : loads) out.push_back(load);
  return out;
}

void Fabric::advance_to_now() {
  const sim::Time now = simulator_->now();
  const double dt = now - last_advance_;
  DROUTE_CHECK(dt >= -1e-12, "fabric clock went backwards");
  if (dt > 0.0) {
    for (auto& [id, flow] : flows_) {
      flow.remaining_bytes =
          std::max(0.0, flow.remaining_bytes - flow.rate_bps * dt);
    }
  }
  last_advance_ = now;
}

void Fabric::reallocate_and_reschedule() {
  // --- Progressive filling (water-filling) with per-flow caps. ---
  // Invariants on exit (checked by tests): no link over capacity, no flow
  // over its cap, and every unfrozen flow is blocked by a saturated link.
  struct LinkState {
    double remaining_bps;
    int active_flows = 0;
  };
  std::unordered_map<LinkId, LinkState> links;
  std::vector<Flow*> unfrozen;
  for (auto& [id, flow] : flows_) {
    flow.rate_bps = 0.0;
    if (!flow.activated) continue;
    unfrozen.push_back(&flow);
    for (LinkId lid : flow.stats.route.links) {
      auto [it, inserted] = links.try_emplace(
          lid,
          LinkState{util::mbps_to_bytes_per_sec(
                        topo_->link(lid).capacity_mbps),
                    0});
      ++it->second.active_flows;
    }
  }

  std::uint64_t rounds = 0;
  while (!unfrozen.empty()) {
    ++rounds;
    double delta = std::numeric_limits<double>::infinity();
    for (const Flow* flow : unfrozen) {
      delta = std::min(delta, flow->cap_bps - flow->rate_bps);
    }
    for (const auto& [lid, state] : links) {
      if (state.active_flows > 0) {
        delta = std::min(delta, state.remaining_bps / state.active_flows);
      }
    }
    delta = std::max(delta, 0.0);

    for (Flow* flow : unfrozen) flow->rate_bps += delta;
    for (auto& [lid, state] : links) {
      state.remaining_bps -= delta * state.active_flows;
    }

    // Freeze flows at their cap or on a saturated link.
    std::vector<Flow*> still;
    still.reserve(unfrozen.size());
    for (Flow* flow : unfrozen) {
      bool frozen = flow->rate_bps >= flow->cap_bps - kRateEps;
      if (!frozen) {
        for (LinkId lid : flow->stats.route.links) {
          if (links.at(lid).remaining_bps <= kRateEps) {
            frozen = true;
            break;
          }
        }
      }
      if (frozen) {
        for (LinkId lid : flow->stats.route.links) {
          --links.at(lid).active_flows;
        }
      } else {
        still.push_back(flow);
      }
    }
    DROUTE_CHECK(still.size() < unfrozen.size() || delta > 0.0,
                 "allocation failed to make progress");
    unfrozen = std::move(still);
  }
  obs::add(obs_realloc_rounds_, rounds);
  if (obs_link_utilization_ != nullptr) {
    for (const auto& [lid, state] : links) {
      const double capacity_bps =
          util::mbps_to_bytes_per_sec(topo_->link(lid).capacity_mbps);
      if (capacity_bps <= 0.0) continue;
      obs_link_utilization_->observe(
          std::max(0.0, 1.0 - state.remaining_bps / capacity_bps));
    }
  }

  // --- Schedule the next completion. ---
  if (completion_event_.valid()) {
    simulator_->cancel(completion_event_);
    completion_event_ = sim::EventId{};
  }
  double next_dt = std::numeric_limits<double>::infinity();
  for (const auto& [id, flow] : flows_) {
    if (flow.rate_bps > kRateEps) {
      next_dt = std::min(next_dt, std::max(0.0, flow.remaining_bytes - kByteEps) /
                                      flow.rate_bps);
    } else if (flow.activated && drained(flow.remaining_bytes, 0.0)) {
      next_dt = 0.0;  // already done, just needs the completion event
    }
  }
  if (std::isfinite(next_dt)) {
    completion_event_ =
        simulator_->schedule_in(next_dt, [this] { on_completion_event(); });
  }
}

void Fabric::on_completion_event() {
  completion_event_ = sim::EventId{};
  advance_to_now();
  std::vector<Flow> done;
  for (auto it = flows_.begin(); it != flows_.end();) {
    if (it->second.activated &&
        drained(it->second.remaining_bytes, it->second.rate_bps)) {
      done.push_back(std::move(it->second));
      it = flows_.erase(it);
    } else {
      ++it;
    }
  }
  reallocate_and_reschedule();
  for (auto& flow : done) {
    delivered_bytes_ += flow.stats.bytes;
    finish(std::move(flow), FlowOutcome::kCompleted);
  }
}

void Fabric::finish(Flow flow, FlowOutcome outcome) {
  flow.stats.end_time = simulator_->now();
  flow.stats.outcome = outcome;
  if (outcome == FlowOutcome::kCompleted) {
    obs::add(obs_flows_completed_);
    obs::observe(obs_flow_duration_, flow.stats.duration_s());
  } else {
    obs::add(obs_flows_failed_);
  }
  finished_moved_bytes_ +=
      static_cast<double>(flow.stats.bytes) - flow.remaining_bytes;
  if (outcome == FlowOutcome::kCompleted) {
    // A completed flow moved all of its payload by definition; reconcile the
    // sub-byte fluid residue into the moved-bytes ledger.
    finished_moved_bytes_ += flow.remaining_bytes;
  }
  DROUTE_LOG(kDebug) << "flow " << flow.stats.id << " " << flow.stats.bytes
                     << "B " << topo_->node(flow.stats.src).name << "->"
                     << topo_->node(flow.stats.dst).name << " outcome="
                     << static_cast<int>(outcome) << " t="
                     << flow.stats.duration_s();
  if (flow.on_complete) flow.on_complete(flow.stats);
}

}  // namespace droute::net
