#include "net/topology.h"

#include <algorithm>
#include <unordered_set>

#include "check/contract.h"

namespace droute::net {

std::optional<LinkId> Topology::find_link(NodeId src, NodeId dst) const {
  for (LinkId lid : out_links_.at(static_cast<std::size_t>(src))) {
    const Link& l = link(lid);
    if (l.dst == dst && l.enabled) return lid;
  }
  return std::nullopt;
}

std::optional<NodeId> Topology::find_node(const std::string& name) const {
  for (const Node& n : nodes_) {
    if (n.name == name) return n.id;
  }
  return std::nullopt;
}

std::optional<AsRelation> Topology::relation(AsId first, AsId second) const {
  for (const AsAdjacency& adj : as_adj_) {
    if (adj.first == first && adj.second == second) return adj.rel;
  }
  return std::nullopt;
}

util::Status Topology::set_link_enabled(LinkId id, bool enabled) {
  if (id < 0 || static_cast<std::size_t>(id) >= links_.size()) {
    return util::Status::failure("set_link_enabled: bad link id");
  }
  links_[static_cast<std::size_t>(id)].enabled = enabled;
  return util::Status::success();
}

util::Status Topology::set_middlebox(NodeId id, double per_flow_mbps) {
  if (id < 0 || static_cast<std::size_t>(id) >= nodes_.size()) {
    return util::Status::failure("set_middlebox: bad node id");
  }
  if (per_flow_mbps < 0) {
    return util::Status::failure("set_middlebox: negative rate");
  }
  nodes_[static_cast<std::size_t>(id)].middlebox_per_flow_mbps = per_flow_mbps;
  return util::Status::success();
}

util::Status Topology::set_link_capacity(LinkId id, double capacity_mbps) {
  if (id < 0 || static_cast<std::size_t>(id) >= links_.size()) {
    return util::Status::failure("set_link_capacity: bad link id");
  }
  if (capacity_mbps <= 0) {
    return util::Status::failure("set_link_capacity: non-positive rate");
  }
  links_[static_cast<std::size_t>(id)].capacity_mbps = capacity_mbps;
  return util::Status::success();
}

util::Status Topology::set_link_policer(LinkId id, double per_flow_mbps) {
  if (id < 0 || static_cast<std::size_t>(id) >= links_.size()) {
    return util::Status::failure("set_link_policer: bad link id");
  }
  if (per_flow_mbps < 0) {
    return util::Status::failure("set_link_policer: negative rate");
  }
  links_[static_cast<std::size_t>(id)].policer_per_flow_mbps = per_flow_mbps;
  return util::Status::success();
}

util::Status Topology::validate() const {
  for (const Node& n : nodes_) {
    if (n.as_id < 0 || static_cast<std::size_t>(n.as_id) >= ases_.size()) {
      return util::Status::failure("node " + n.name + " in undeclared AS");
    }
  }
  // Determinism audit: duplicate detection only (insert + bool result);
  // the loop iterates nodes_ in declaration order, never the set.
  std::unordered_set<std::string> names;
  for (const Node& n : nodes_) {
    if (!names.insert(n.name).second) {
      return util::Status::failure("duplicate node name: " + n.name);
    }
  }
  for (const Link& l : links_) {
    if (l.src < 0 || static_cast<std::size_t>(l.src) >= nodes_.size() ||
        l.dst < 0 || static_cast<std::size_t>(l.dst) >= nodes_.size()) {
      return util::Status::failure("link with dangling endpoint");
    }
    if (l.src == l.dst) return util::Status::failure("self-loop link");
    if (l.capacity_mbps <= 0) {
      return util::Status::failure("non-positive link capacity");
    }
    if (l.prop_delay_s < 0 || l.loss_rate < 0 || l.loss_rate >= 1.0) {
      return util::Status::failure("invalid link delay/loss");
    }
    const AsId sa = node(l.src).as_id, da = node(l.dst).as_id;
    if (sa != da && !relation(sa, da).has_value()) {
      return util::Status::failure(
          "inter-AS link without declared relationship: " + node(l.src).name +
          " -> " + node(l.dst).name);
    }
  }
  return util::Status::success();
}

// ---------------------------------------------------------------------------
// Builder

AsId Topology::Builder::add_as(const std::string& name) {
  const AsId id = static_cast<AsId>(topo_.ases_.size());
  topo_.ases_.push_back(As{id, name});
  next_host_in_as_.push_back(1);
  return id;
}

Topology::Builder& Topology::Builder::relate(AsId a, AsId b,
                                             AsRelation b_is_to_a) {
  topo_.as_adj_.push_back({a, b, b_is_to_a});
  // Record the converse so relation() works in both directions.
  AsRelation a_is_to_b;
  switch (b_is_to_a) {
    case AsRelation::kCustomer: a_is_to_b = AsRelation::kProvider; break;
    case AsRelation::kProvider: a_is_to_b = AsRelation::kCustomer; break;
    case AsRelation::kPeer:     a_is_to_b = AsRelation::kPeer; break;
    default:                    a_is_to_b = AsRelation::kPeer; break;
  }
  topo_.as_adj_.push_back({b, a, a_is_to_b});
  return *this;
}

NodeId Topology::Builder::add_node(AsId as, const std::string& name,
                                   NodeKind kind, geo::Coord coord,
                                   const std::string& city,
                                   const std::string& tag) {
  DROUTE_CHECK(as >= 0 && static_cast<std::size_t>(as) < topo_.ases_.size(),
               "add_node: undeclared AS");
  const NodeId id = static_cast<NodeId>(topo_.nodes_.size());
  Node n;
  n.id = id;
  n.name = name;
  n.as_id = as;
  n.kind = kind;
  n.coord = coord;
  n.tag = tag;
  // 10.<as>.<hi>.<lo> — unique, stable, readable in traceroutes.
  const std::uint32_t serial = next_host_in_as_[static_cast<std::size_t>(as)]++;
  n.ip = geo::Ipv4{(10u << 24) | (static_cast<std::uint32_t>(as) << 16) |
                   (serial & 0xffffu)};
  topo_.nodes_.push_back(n);
  topo_.out_links_.emplace_back();

  geo::Location loc;
  loc.name = name;
  loc.city = city.empty() ? "unknown" : city;
  loc.coord = coord;
  loc.kind = kind == NodeKind::kRouter ? "router"
             : tag.empty()             ? "host"
                                       : tag;
  topo_.registry_.add(loc);
  const auto bound = topo_.registry_.bind_ip(n.ip, name);
  DROUTE_CHECK(bound.ok(), "registry bind failed");
  return id;
}

NodeId Topology::Builder::add_router(AsId as, const std::string& name,
                                     geo::Coord coord,
                                     const std::string& city) {
  return add_node(as, name, NodeKind::kRouter, coord, city, "");
}

NodeId Topology::Builder::add_host(AsId as, const std::string& name,
                                   geo::Coord coord, const std::string& city,
                                   const std::string& tag) {
  return add_node(as, name, NodeKind::kHost, coord, city, tag);
}

Topology::Builder& Topology::Builder::middlebox(NodeId node,
                                                double per_flow_mbps) {
  topo_.nodes_.at(static_cast<std::size_t>(node)).middlebox_per_flow_mbps =
      per_flow_mbps;
  return *this;
}

LinkId Topology::Builder::add_link(NodeId src, NodeId dst,
                                   double capacity_mbps, double prop_delay_s,
                                   LinkOpts opts) {
  const LinkId id = static_cast<LinkId>(topo_.links_.size());
  Link l;
  l.id = id;
  l.src = src;
  l.dst = dst;
  l.capacity_mbps = capacity_mbps;
  l.prop_delay_s = prop_delay_s;
  l.loss_rate = opts.loss_rate;
  l.policer_per_flow_mbps = opts.policer_per_flow_mbps;
  topo_.links_.push_back(l);
  topo_.out_links_.at(static_cast<std::size_t>(src)).push_back(id);
  return id;
}

LinkId Topology::Builder::add_duplex(NodeId a, NodeId b, double capacity_mbps,
                                     double prop_delay_s, LinkOpts opts) {
  const LinkId forward = add_link(a, b, capacity_mbps, prop_delay_s, opts);
  add_link(b, a, capacity_mbps, prop_delay_s, opts);
  return forward;
}

LinkId Topology::Builder::add_duplex_geo(NodeId a, NodeId b,
                                         double capacity_mbps, LinkOpts opts) {
  const double delay = geo::propagation_delay_s(
      topo_.nodes_.at(static_cast<std::size_t>(a)).coord,
      topo_.nodes_.at(static_cast<std::size_t>(b)).coord);
  return add_duplex(a, b, capacity_mbps, delay, opts);
}

util::Result<Topology> Topology::Builder::build() && {
  if (auto status = topo_.validate(); !status.ok()) {
    return util::Error{status.error()};
  }
  return std::move(topo_);
}

}  // namespace droute::net
