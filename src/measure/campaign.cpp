#include "measure/campaign.h"

#include <atomic>

#include "check/contract.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "util/logging.h"
#include "util/rng.h"

namespace droute::measure {

std::uint64_t derive_seed(std::uint64_t base_seed, const std::string& key,
                          std::uint64_t bytes, int run_index) {
  // FNV-1a over the key, then SplitMix to decorrelate nearby inputs.
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (char c : key) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  util::SplitMix64 mix(base_seed ^ h ^ (bytes * 0x9e3779b97f4a7c15ull) ^
                       (static_cast<std::uint64_t>(run_index) << 32));
  return mix.next();
}

void Campaign::add_route(const std::string& key, TransferFn fn) {
  DROUTE_CHECK(fn != nullptr, "null TransferFn");
  const auto [it, inserted] = routes_.emplace(key, std::move(fn));
  (void)it;
  DROUTE_CHECK(inserted, "duplicate route key: " + key);
  order_.push_back(key);
}

Measurement Campaign::measure(const std::string& key, std::uint64_t bytes,
                              const Protocol& protocol) const {
  const auto it = routes_.find(key);
  DROUTE_CHECK(it != routes_.end(), "unknown route key: " + key);

  // Resolve obs handles per cell, not per object: Campaign may outlive a
  // test-scoped Recorder, so nothing is cached across calls. Each cell gets
  // its own trace track; runs map to lanes, so a grid renders as one row per
  // (route, size) with seven run spans laid out along it.
  obs::Counter* runs_total = obs::counter("measure.runs_total");
  obs::Counter* run_failures = obs::counter("measure.run_failures_total");
  obs::Histogram* run_elapsed =
      obs::histogram("measure.run_elapsed_s", obs::duration_bounds_s());
  std::uint32_t track = 0;
  if (obs::Recorder* rec = obs::recorder()) {
    track = rec->new_track(key + " @" + std::to_string(bytes) + "B");
  }

  Measurement m;
  m.runs.reserve(static_cast<std::size_t>(protocol.total_runs));
  for (int run = 0; run < protocol.total_runs; ++run) {
    const std::uint64_t seed = derive_seed(base_seed_, key, bytes, run);
    obs::ScopedTrack scoped(track, static_cast<std::uint32_t>(run));
    auto elapsed = it->second(bytes, seed);
    obs::add(runs_total);
    if (elapsed.ok()) {
      m.runs.push_back(elapsed.value());
      obs::observe(run_elapsed, elapsed.value());
      if (obs::enabled()) {
        // Each run builds a fresh world, so its sim clock starts at zero.
        obs::emit_span("measure.run", obs::Clock::kSim, 0.0, elapsed.value(),
                       {{"route", key},
                        {"bytes", std::to_string(bytes)},
                        {"run", std::to_string(run)}});
      }
    } else {
      ++m.failures;
      obs::add(run_failures);
      DROUTE_LOG(kWarn) << "run failed for " << key << " @" << bytes << "B: "
                        << elapsed.error().message;
    }
  }
  m.kept = stats::keep_last_summary(
      m.runs, static_cast<std::size_t>(protocol.keep_last));
  return m;
}

Campaign::Grid Campaign::run_grid(const std::vector<std::uint64_t>& sizes,
                                  const Protocol& protocol,
                                  util::ThreadPool* pool) const {
  // Materialize the cell list first so indices are stable across threads.
  std::vector<std::pair<std::string, std::uint64_t>> cells;
  for (const std::string& key : order_) {
    for (std::uint64_t bytes : sizes) cells.emplace_back(key, bytes);
  }
  std::vector<Measurement> results(cells.size());
  auto run_cell = [&](std::size_t i) {
    results[i] = measure(cells[i].first, cells[i].second, protocol);
  };
  if (pool != nullptr) {
    pool->parallel_for(cells.size(), run_cell);
  } else {
    for (std::size_t i = 0; i < cells.size(); ++i) run_cell(i);
  }
  Grid grid;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    grid.emplace(cells[i], std::move(results[i]));
  }
  return grid;
}

}  // namespace droute::measure
