// Client-workload generator: a day in the life of a cloud-storage user
// population, in the spirit of the passive measurements the paper cites
// (Drago et al. [4][8]): Poisson session arrivals, a geometric number of
// files per session, and heavy-tailed (log-normal, clamped) file sizes.
// Drives the BatchScheduler benches.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace droute::measure {

struct WorkloadProfile {
  double mean_session_interarrival_s = 300.0;
  double mean_files_per_session = 3.0;      // geometric, >= 1
  double file_size_mean_mb = 12.0;          // log-normal mean
  double file_size_cv = 1.8;                // heavy tail
  std::uint64_t min_bytes = 100 * 1000;
  std::uint64_t max_bytes = 200 * 1000 * 1000;
  /// Seconds between files within one session (user think time).
  double intra_session_gap_s = 20.0;
};

struct WorkloadItem {
  double at_s = 0.0;           // submission time from workload start
  std::uint64_t bytes = 0;
};

/// Generates all items arriving within [0, horizon_s). Deterministic per
/// RNG state; items are returned in nondecreasing submission order.
std::vector<WorkloadItem> generate_workload(util::Rng& rng,
                                            const WorkloadProfile& profile,
                                            double horizon_s);

}  // namespace droute::measure
