#include "measure/workload.h"

#include <algorithm>

#include "check/contract.h"
#include "util/result.h"

namespace droute::measure {

std::vector<WorkloadItem> generate_workload(util::Rng& rng,
                                            const WorkloadProfile& profile,
                                            double horizon_s) {
  DROUTE_CHECK(profile.mean_session_interarrival_s > 0 &&
                   profile.mean_files_per_session >= 1.0 &&
                   profile.min_bytes > 0 &&
                   profile.max_bytes >= profile.min_bytes,
               "invalid workload profile");
  std::vector<WorkloadItem> items;
  double session_at = 0.0;
  for (;;) {
    session_at += rng.exponential(profile.mean_session_interarrival_s);
    if (session_at >= horizon_s) break;
    // Geometric number of files with the requested mean: P(stop) = 1/mean.
    const double stop_p = 1.0 / profile.mean_files_per_session;
    double file_at = session_at;
    do {
      WorkloadItem item;
      item.at_s = file_at;
      const double mb = rng.lognormal_mean_cv(profile.file_size_mean_mb,
                                              profile.file_size_cv);
      item.bytes = std::clamp<std::uint64_t>(
          static_cast<std::uint64_t>(mb * 1e6), profile.min_bytes,
          profile.max_bytes);
      if (item.at_s < horizon_s) items.push_back(item);
      file_at += rng.exponential(profile.intra_session_gap_s);
    } while (!rng.chance(stop_p));
  }
  std::sort(items.begin(), items.end(),
            [](const WorkloadItem& a, const WorkloadItem& b) {
              return a.at_s < b.at_s;
            });
  return items;
}

}  // namespace droute::measure
