// Measurement campaigns with the paper's exact protocol (Sec II):
// "For each of the measurements, we take the mean of the last five runs
//  among a total of seven runs. One standard deviation has been shown as
//  the error-bar."
//
// A campaign is a grid of (route, file-size) cells. Each cell is measured by
// invoking a TransferFn `total_runs` times with distinct derived seeds; every
// invocation is expected to build a fresh simulator world, so runs are
// independent and the whole grid can execute in parallel on a thread pool
// without shared state.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "stats/descriptive.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace droute::measure {

struct Protocol {
  int total_runs = 7;
  int keep_last = 5;
};

/// One transfer attempt: returns elapsed seconds for `bytes` under
/// `run_seed`, or an error (unroutable, server rejection, ...).
using TransferFn =
    std::function<util::Result<double>(std::uint64_t bytes,
                                       std::uint64_t run_seed)>;

struct Measurement {
  std::vector<double> runs;   // every run, in execution order
  stats::Summary kept;        // paper statistic over the last keep_last runs
  int failures = 0;           // runs that errored (excluded from stats)
};

/// Deterministic per-run seed: depends on campaign seed, route key, size and
/// run index only — stable across platforms and execution order.
std::uint64_t derive_seed(std::uint64_t base_seed, const std::string& key,
                          std::uint64_t bytes, int run_index);

class Campaign {
 public:
  explicit Campaign(std::uint64_t base_seed = 0x5eedu) : base_seed_(base_seed) {}

  /// Registers a route under a unique key (e.g. "UBC->GDrive direct").
  void add_route(const std::string& key, TransferFn fn);

  const std::vector<std::string>& route_keys() const { return order_; }

  /// Measures a single (route, size) cell sequentially.
  Measurement measure(const std::string& key, std::uint64_t bytes,
                      const Protocol& protocol = {}) const;

  /// Measures the full grid; runs execute concurrently on `pool` (pass
  /// nullptr for sequential). Results keyed by (route key, bytes).
  using Grid = std::map<std::pair<std::string, std::uint64_t>, Measurement>;
  Grid run_grid(const std::vector<std::uint64_t>& sizes,
                const Protocol& protocol = {},
                util::ThreadPool* pool = nullptr) const;

 private:
  std::uint64_t base_seed_;
  std::map<std::string, TransferFn> routes_;
  std::vector<std::string> order_;
};

}  // namespace droute::measure
